//! The fleet service: N supervised devices, sharded over a worker pool
//! with work-stealing, one transport per device, *sharded* ingest workers
//! verifying and aggregating every frame in batches.
//!
//! Lifecycle of a run:
//!
//! 1. **Boot** — one transport per slot (backends assigned round-robin
//!    unless pinned), the supervisor boots every slot through the device
//!    factory, slot ids are dealt across the shard queues.
//! 2. **Run** — each shard worker pops a slot and runs a *burst* of up to
//!    [`FleetConfig::turn_burst`] supervision turns on it before
//!    re-enqueueing, so a device's working set (its simulated RAM, decode
//!    and block caches) stays cache-hot across consecutive slices instead
//!    of being evicted by a round-robin pass over the whole fleet. Idle
//!    workers steal from the most loaded shard.
//! 3. **Ingest** — sharded with the workers, not serialized behind one
//!    thread. Every frame is integrity-verified at ingest
//!    ([`titancfi::wire::Frame`]) through batched
//!    [`Transport::try_recv_many`] bursts. The hot path is *poll-coupled*:
//!    the worker that just ran a turn on a slot immediately drains that
//!    slot's transport (the frames it just produced are still in cache,
//!    and on the lock-free in-process ring producer and consumer cursors
//!    never contend). Each worker additionally owns a fixed partition of
//!    slots (`slot % shards == shard`) which it sweeps while idle and
//!    during shutdown, so no transport depends on its poller for
//!    liveness. Per-slot sequence trackers and counters live behind
//!    per-slot locks (uncontended in steady state) and are mirrored into
//!    atomics the monitor thread reads without touching the trackers.
//! 4. **Monitor** — the main thread no longer ingests anything: it wakes
//!    on a fixed sweep cadence, appends JSONL snapshot lines, evaluates
//!    the health monitor, and refreshes the Prometheus exposition file.
//! 5. **Drain** — after the workers join (each drains its own partition
//!    dry once supervision quiesces), the service alternates device
//!    flushes with full ingest sweeps until every buffered frame is out of
//!    every device *and* every transport is empty, then verifies
//!    frames-in == frames-out.
//!
//! The [`FleetReport`] carries every counter the acceptance gate needs:
//! zero `frames_lost`, zero `frames_corrupt` on a clean fleet.

use crate::device::Device;
use crate::health::{Alert, DeviceCounters, HealthConfig, HealthMonitor};
use crate::supervisor::{
    DeviceFactory, FailureRecord, SupervisionConfig, SupervisionStats, Supervisor, Turn,
};
use crate::transport::{Backend, Transport, TransportStats};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use titancfi::wire::{Frame, SeqTracker};
use titancfi_harness::{Json, StealQueues};
use titancfi_obs::{Histogram, SimMetrics};

/// Fleet-wide configuration.
pub struct FleetConfig {
    /// Number of device slots. Zero is legal: the service boots, finds no
    /// work, and reports an all-zero run (the quiescence-protocol
    /// regression case).
    pub devices: u32,
    /// Worker shards (threads) driving the devices *and* ingesting their
    /// partitions of the transports.
    pub shards: usize,
    /// Supervision turns each slot is scheduled for. The run phase ends
    /// when every slot has consumed its passes (or parked).
    pub passes: u64,
    /// Per-transport capacity in frames.
    pub transport_capacity: usize,
    /// Consecutive supervision turns a worker runs on one slot before
    /// re-enqueueing it. Bursts keep a device's simulated RAM and decode
    /// caches hot; without them a thousand-device fleet round-robins its
    /// entire working set through the host cache every pass.
    pub turn_burst: u64,
    /// Pin every slot to one backend, or `None` for round-robin across
    /// [`Backend::ALL`].
    pub backend: Option<Backend>,
    /// Supervision policy.
    pub supervision: SupervisionConfig,
    /// Append JSONL telemetry snapshots here (one line per cadence tick).
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Ingest sweeps between snapshot lines.
    pub snapshot_every_sweeps: u64,
    /// Health-monitor thresholds; the monitor evaluates once per snapshot
    /// cadence tick plus once after the drain phase.
    pub health: HealthConfig,
    /// Overwrite a Prometheus-text exposition snapshot here at each
    /// evaluation (the scrape-endpoint analog for a file-based fleet).
    pub exposition_path: Option<std::path::PathBuf>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            devices: 8,
            shards: 4,
            passes: 64,
            transport_capacity: 64,
            turn_burst: 8,
            backend: None,
            supervision: SupervisionConfig::default(),
            snapshot_path: None,
            snapshot_every_sweeps: 64,
            health: HealthConfig::default(),
            exposition_path: None,
        }
    }
}

/// Everything a finished fleet run reports.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Device slots.
    pub devices: u32,
    /// Worker shards.
    pub shards: usize,
    /// Frames accepted by the transports (device side).
    pub frames_sent: u64,
    /// Frames verified and ingested (monitor side).
    pub frames_ok: u64,
    /// Frames rejected by the integrity word at ingest.
    pub frames_corrupt: u64,
    /// `frames_sent - frames_ok - frames_corrupt`: anything a transport
    /// accepted but never delivered. Zero on a healthy fleet.
    pub frames_lost: u64,
    /// Duplicate sequence numbers observed at ingest.
    pub seq_duplicates: u64,
    /// Sequence gaps observed at ingest.
    pub seq_gaps: u64,
    /// Sends refused with `WouldBlock` (explicit backpressure stalls).
    pub send_stalls: u64,
    /// Work-stealing operations between shards.
    pub steals: u64,
    /// Supervision turns executed.
    pub turns: u64,
    /// Simulated cycles advanced across the whole fleet.
    pub sim_cycles: u64,
    /// Supervision counters (escalations, respawns, completions,
    /// violations).
    pub supervision: SupervisionStats,
    /// Permanent-failure ledger.
    pub ledger: Vec<FailureRecord>,
    /// Devices whose buffers could not be fully drained at shutdown.
    /// Nonzero means the shutdown protocol failed — an unreaped device.
    pub undrained_devices: u32,
    /// Wall-clock seconds spent booting the fleet (transports plus every
    /// slot's first device: firmware boot, program load, predecode). A
    /// one-time setup cost proportional to fleet size — kept out of
    /// [`FleetReport::wall_seconds`] so the throughput figure measures the
    /// sustained service, not the cold start.
    pub boot_seconds: f64,
    /// Wall-clock seconds for the run+drain phases (excludes boot).
    pub wall_seconds: f64,
    /// Per-backend transport counters, in [`Backend::ALL`] order
    /// (absent backends have all-zero stats).
    pub per_backend: Vec<(Backend, TransportStats)>,
    /// The aggregated metrics registry (counters mirrored above plus
    /// per-device owned counters).
    pub metrics: SimMetrics,
    /// Final per-device health scores (0–100).
    pub health_scores: Vec<u8>,
    /// Every alert the health monitor raised, in fire order.
    pub alerts: Vec<Alert>,
    /// Merged end-to-end latency histogram across devices that collected
    /// one ([`crate::device::SocDeviceConfig::latency`]).
    pub latency_e2e: Option<Histogram>,
    /// The final Prometheus-text exposition snapshot.
    pub exposition: String,
}

impl FleetReport {
    /// The acceptance predicate: every accepted frame delivered and
    /// verified, nothing corrupt, nobody left undrained.
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.frames_lost == 0 && self.frames_corrupt == 0 && self.undrained_devices == 0
    }

    /// Commit logs ingested per wall-clock second of run+drain (boot
    /// excluded — see [`FleetReport::boot_seconds`]).
    #[must_use]
    pub fn logs_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.frames_ok as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Frames per batched receive on the ingest path.
const INGEST_BATCH: usize = 64;

/// A zeroed frame for receive-buffer initialization.
const ZERO_FRAME: Frame = Frame {
    seq: 0,
    log: titancfi::CommitLog {
        pc: 0,
        insn: 0,
        next: 0,
        target: 0,
    },
};

/// Per-slot ingest state: the sequence tracker plus exact counters. Locked
/// by whichever worker currently drains the slot's transport — its poller
/// on the hot path, the partition owner on idle/drain sweeps — so the lock
/// is uncontended in steady state.
struct SlotIngest {
    tracker: SeqTracker,
    frames_ok: u64,
    frames_corrupt: u64,
}

/// Monitor-readable mirror of one slot's ingest counters. The monitor
/// thread snapshots these relaxed atomics on its cadence without ever
/// touching the trackers or the transports.
#[derive(Default)]
struct SlotMirror {
    frames_ok: AtomicU64,
    frames_corrupt: AtomicU64,
    seq_gaps: AtomicU64,
    seq_duplicates: AtomicU64,
}

/// Sharded ingest state over every slot.
struct Ingest<'a> {
    transports: &'a [Arc<dyn Transport>],
    slots: Vec<Mutex<SlotIngest>>,
    mirrors: Vec<SlotMirror>,
    /// Total per-slot drain operations — the snapshot cadence's clock.
    sweeps: AtomicU64,
}

impl<'a> Ingest<'a> {
    fn new(transports: &'a [Arc<dyn Transport>]) -> Ingest<'a> {
        Ingest {
            transports,
            slots: (0..transports.len())
                .map(|_| {
                    Mutex::new(SlotIngest {
                        tracker: SeqTracker::new(),
                        frames_ok: 0,
                        frames_corrupt: 0,
                    })
                })
                .collect(),
            mirrors: (0..transports.len())
                .map(|_| SlotMirror::default())
                .collect(),
            sweeps: AtomicU64::new(0),
        }
    }

    /// Drains one slot's transport to empty in [`INGEST_BATCH`]-frame
    /// bursts, verifying sequence continuity. Returns frames moved
    /// (corrupt frames count — they are progress for quiescence purposes).
    fn drain_slot(&self, slot: usize) -> u64 {
        let mut state = self.slots[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut buf = [ZERO_FRAME; INGEST_BATCH];
        let mut moved = 0u64;
        loop {
            let batch = self.transports[slot].try_recv_many(&mut buf);
            for frame in &buf[..batch.received] {
                state.tracker.observe(frame.seq);
            }
            state.frames_ok += batch.received as u64;
            state.frames_corrupt += batch.corrupt as u64;
            moved += batch.moved() as u64;
            if batch.moved() < INGEST_BATCH {
                break;
            }
        }
        if moved > 0 {
            let mirror = &self.mirrors[slot];
            mirror.frames_ok.store(state.frames_ok, Ordering::Relaxed);
            mirror
                .frames_corrupt
                .store(state.frames_corrupt, Ordering::Relaxed);
            mirror.seq_gaps.store(state.tracker.gaps, Ordering::Relaxed);
            mirror
                .seq_duplicates
                .store(state.tracker.duplicates, Ordering::Relaxed);
        }
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        moved
    }

    /// Sweeps the fixed partition a shard owns (`slot % shards == shard`).
    fn sweep_partition(&self, shard: usize, shards: usize) -> u64 {
        let mut moved = 0;
        let mut slot = shard;
        while slot < self.transports.len() {
            moved += self.drain_slot(slot);
            slot += shards;
        }
        moved
    }

    /// Sweeps every slot (single-threaded drain phase).
    fn sweep_all(&self) -> u64 {
        (0..self.transports.len())
            .map(|slot| self.drain_slot(slot))
            .sum()
    }

    /// Sums a counter over the monitor-readable mirrors.
    fn mirror_total(&self, f: impl Fn(&SlotMirror) -> &AtomicU64) -> u64 {
        self.mirrors
            .iter()
            .map(|m| f(m).load(Ordering::Relaxed))
            .sum()
    }

    /// Exact totals from the per-slot states (quiescent side only).
    fn totals(&self) -> (u64, u64, u64, u64) {
        let mut ok = 0;
        let mut corrupt = 0;
        let mut dups = 0;
        let mut gaps = 0;
        for slot in &self.slots {
            let state = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            ok += state.frames_ok;
            corrupt += state.frames_corrupt;
            dups += state.tracker.duplicates;
            gaps += state.tracker.gaps;
        }
        (ok, corrupt, dups, gaps)
    }
}

/// A JSONL telemetry sink that appends one snapshot object per line.
struct SnapshotSink {
    file: Option<std::fs::File>,
}

impl SnapshotSink {
    fn open(path: Option<&std::path::Path>) -> SnapshotSink {
        SnapshotSink {
            file: path.and_then(|p| {
                match std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)
                {
                    Ok(file) => Some(file),
                    Err(e) => {
                        // A mistyped snapshot path must not silently drop
                        // all telemetry — one warning, then run without it.
                        eprintln!(
                            "fleet: cannot open snapshot path {}: {e}; telemetry disabled",
                            p.display()
                        );
                        None
                    }
                }
            }),
        }
    }

    fn write(&mut self, line: &Json) {
        if let Some(file) = self.file.as_mut() {
            let _ = writeln!(file, "{}", line.encode());
        }
    }
}

/// Runs a fleet to completion: boot, run, ingest, drain, report.
///
/// The `factory` is called for every boot and respawn with
/// `(slot, start_seq, transport)` and must return a device wired to that
/// transport.
#[allow(clippy::too_many_lines)]
pub fn run_fleet<F>(config: &FleetConfig, factory: F) -> FleetReport
where
    F: Fn(u32, u16, Arc<dyn Transport>) -> Box<dyn Device> + Send + Sync + 'static,
{
    let started = std::time::Instant::now();
    let devices = config.devices;
    let shards = config.shards.max(1);
    let turn_burst = config.turn_burst.max(1);

    // One transport per slot, backends round-robin unless pinned.
    let transports: Vec<Arc<dyn Transport>> = (0..devices)
        .map(|slot| {
            let kind = config
                .backend
                .unwrap_or(Backend::ALL[slot as usize % Backend::ALL.len()]);
            Arc::from(kind.build(config.transport_capacity))
        })
        .collect();

    let supervisor = {
        let transports = transports.clone();
        Supervisor::new(
            devices,
            config.supervision,
            Box::new(move |slot, seq| factory(slot, seq, Arc::clone(&transports[slot as usize])))
                as DeviceFactory,
        )
    };

    let boot_seconds = started.elapsed().as_secs_f64();
    let run_started = std::time::Instant::now();

    let queues: StealQueues<u32> = StealQueues::new(shards);
    for slot in 0..devices {
        queues.push(slot as usize % shards, slot);
    }

    let turns_done: Vec<AtomicU64> = (0..devices).map(|_| AtomicU64::new(0)).collect();
    let sim_cycles = AtomicU64::new(0);
    let total_turns = AtomicU64::new(0);
    // Workers hold `in_flight` while they own a popped slot; supervision
    // is quiescent only when the queues are empty AND nothing is in
    // flight — an in-flight slot may still be re-enqueued, so "empty"
    // alone is not quiescence. The check uses the `fetch_sub` return
    // value itself: only the worker whose decrement empties the in-flight
    // set can observe quiescence, so two workers can never both reason
    // from a stale later load and race past a slot that is about to be
    // re-enqueued. `sup_done` counts workers past supervision; `finished`
    // counts workers that have also drained their ingest partitions dry.
    let in_flight = AtomicU64::new(0);
    let sup_done = AtomicU64::new(0);
    let finished = AtomicU64::new(0);
    let ingest = Ingest::new(&transports);
    let mut sink = SnapshotSink::open(config.snapshot_path.as_deref());
    let mut monitor = HealthMonitor::new(devices as usize, config.health);

    std::thread::scope(|scope| {
        // Shard workers: supervision turns in cache-friendly bursts, each
        // followed by a poll-coupled drain of the slot's transport; the
        // shard's fixed ingest partition is swept while idle and after
        // supervision quiesces.
        for shard in 0..shards {
            let queues = &queues;
            let supervisor = &supervisor;
            let turns_done = &turns_done;
            let sim_cycles = &sim_cycles;
            let total_turns = &total_turns;
            let in_flight = &in_flight;
            let sup_done = &sup_done;
            let finished = &finished;
            let ingest = &ingest;
            let passes = config.passes;
            scope.spawn(move || {
                loop {
                    in_flight.fetch_add(1, Ordering::AcqRel);
                    let Some(slot) = queues.pop(shard) else {
                        // The fetch_sub result is the whole quiescence
                        // check: if this decrement leaves the in-flight
                        // set non-empty, some worker may yet re-enqueue.
                        let remaining = in_flight.fetch_sub(1, Ordering::AcqRel);
                        if remaining == 1 && queues.is_empty() {
                            break;
                        }
                        // Nothing to supervise right now: help drain the
                        // shard's partition instead of busy-waiting.
                        if ingest.sweep_partition(shard, shards) == 0 {
                            std::thread::yield_now();
                        }
                        continue;
                    };
                    let mut requeue = true;
                    let mut burst_worked = false;
                    for _ in 0..turn_burst {
                        let turn = supervisor.turn(slot);
                        total_turns.fetch_add(1, Ordering::Relaxed);
                        // A pass is consumed only by *work* (cycles
                        // simulated, frames moved, a respawn). A
                        // backpressured or idle poll reschedules for free —
                        // burning the budget on busy-waits would end the
                        // run phase before ingest relieved the transports.
                        let worked = match turn {
                            Turn::Progress(out) | Turn::Recycled(out) => {
                                sim_cycles.fetch_add(out.cycles, Ordering::Relaxed);
                                Some(out.cycles > 0 || out.frames > 0)
                            }
                            Turn::Respawned(_) => Some(true),
                            Turn::Parked(_) | Turn::Dead => None,
                        };
                        // Poll-coupled ingest: drain the frames this turn
                        // just produced while they are still cache-hot.
                        ingest.drain_slot(slot as usize);
                        match worked {
                            Some(true) => {
                                burst_worked = true;
                                let done =
                                    turns_done[slot as usize].fetch_add(1, Ordering::Relaxed) + 1;
                                if done >= passes {
                                    requeue = false;
                                    break;
                                }
                            }
                            Some(false) => break, // idle: give the slot up
                            None => {
                                requeue = false; // parked/dead
                                break;
                            }
                        }
                    }
                    // The re-enqueue (if any) happens before the in-flight
                    // drop, so quiescence checks never miss a live slot.
                    if requeue {
                        queues.push(shard, slot);
                    }
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                    if !burst_worked {
                        std::thread::yield_now();
                    }
                }
                // Supervision quiescent: no worker will run another turn.
                // Drain this shard's partition until it stays dry after
                // every worker has stopped producing.
                sup_done.fetch_add(1, Ordering::Release);
                loop {
                    let moved = ingest.sweep_partition(shard, shards);
                    if moved == 0 {
                        if sup_done.load(Ordering::Acquire) == shards as u64 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }

        // Monitor loop on the scope's main thread: no ingest work, just
        // telemetry on the sweep cadence until every worker has finished.
        // `ingest.sweeps` counts *per-slot* drains, so one fleet-wide
        // sweep equivalent is `devices` drains — the cadence must scale
        // with fleet size or a thousand-device fleet ticks on every
        // wakeup, and each tick walks every supervisor slot lock (health
        // counters, latency merge) in direct contention with the workers.
        let cadence = config.snapshot_every_sweeps.max(1) * u64::from(devices.max(1));
        let mut last_tick = 0u64;
        // 2ms per wakeup: on a single-CPU microVM each timer expiry is a
        // context switch stolen from a worker mid-slice, so the monitor
        // polls coarsely — telemetry cadence is sweep-counted, not
        // wall-clock-counted, and loses nothing to a lazy poller.
        while finished.load(Ordering::Acquire) < shards as u64 {
            std::thread::sleep(std::time::Duration::from_millis(2));
            let tick = ingest.sweeps.load(Ordering::Relaxed) / cadence;
            if tick > last_tick {
                last_tick = tick;
                let sweeps = ingest.sweeps.load(Ordering::Relaxed);
                let stats = supervisor.stats();
                sink.write(&snapshot_line("fleet_snapshot", sweeps, &ingest, &stats));
                let latency = merged_latency(&supervisor, devices);
                monitor.evaluate(
                    &device_counters(&ingest, &supervisor, devices),
                    latency.as_ref().map(|h| h.percentile(0.99)),
                );
                sink.write(&health_line(sweeps, &monitor));
                if let Some(path) = config.exposition_path.as_deref() {
                    let text =
                        monitor.prometheus(&fleet_counter_pairs(&ingest, &stats), latency.as_ref());
                    let _ = std::fs::write(path, text);
                }
            }
        }
    });

    // Drain phase: no more sim work; alternate flushes with sweeps until
    // every device buffer and every transport is empty (or stops making
    // progress, which the report then calls out as undrained).
    let mut undrained_devices = 0u32;
    loop {
        let buffered: usize = (0..devices).map(|s| supervisor.flush(s)).sum();
        let moved = ingest.sweep_all();
        if buffered == 0 && moved == 0 {
            break;
        }
        if moved == 0 && buffered > 0 {
            // Flushes are blocked yet ingest moves nothing: wedged buffers.
            undrained_devices = (0..devices).filter(|&s| supervisor.flush(s) > 0).count() as u32;
            break;
        }
    }

    // Final health evaluation: even a run shorter than one snapshot
    // cadence gets its counters through the alert engine, and the drain
    // phase's last gaps/violations are visible to it.
    let latency_e2e = merged_latency(&supervisor, devices);
    monitor.evaluate(
        &device_counters(&ingest, &supervisor, devices),
        latency_e2e.as_ref().map(|h| h.percentile(0.99)),
    );

    let per_backend: Vec<(Backend, TransportStats)> = Backend::ALL
        .iter()
        .map(|&kind| {
            let mut total = TransportStats::default();
            for tx in transports.iter().filter(|t| t.backend() == kind) {
                let s = tx.stats();
                total.sent += s.sent;
                total.received += s.received;
                total.corrupt += s.corrupt;
                total.would_block += s.would_block;
            }
            (kind, total)
        })
        .collect();

    let frames_sent: u64 = per_backend.iter().map(|(_, s)| s.sent).sum();
    let send_stalls: u64 = per_backend.iter().map(|(_, s)| s.would_block).sum();
    let supervision = supervisor.stats();
    let wall_seconds = run_started.elapsed().as_secs_f64();
    let (frames_ok, frames_corrupt, seq_duplicates, seq_gaps) = ingest.totals();

    // Fold everything into the metrics registry: fleet-wide static names
    // plus one owned counter per device slot.
    let mut metrics = SimMetrics::new();
    metrics.add("fleet.frames.sent", frames_sent);
    metrics.add("fleet.frames.ok", frames_ok);
    metrics.add("fleet.frames.corrupt", frames_corrupt);
    metrics.add("fleet.seq.duplicates", seq_duplicates);
    metrics.add("fleet.seq.gaps", seq_gaps);
    metrics.add("fleet.send.stalls", send_stalls);
    metrics.add("fleet.steals", queues.steals());
    metrics.add("fleet.turns", total_turns.load(Ordering::Relaxed));
    metrics.add("fleet.sim.cycles", sim_cycles.load(Ordering::Relaxed));
    metrics.add("fleet.runs.completed", supervision.completed_runs);
    metrics.add("fleet.devices.escalated.hung", supervision.escalated_hung);
    metrics.add(
        "fleet.devices.escalated.trapped",
        supervision.escalated_trapped,
    );
    metrics.add("fleet.devices.respawned", supervision.respawns);
    metrics.add("fleet.devices.failed", supervision.permanent_failures);
    metrics.add("fleet.violations", supervision.violations);
    metrics.add("fleet.alerts", monitor.alerts().len() as u64);
    for (slot, mirror) in ingest.mirrors.iter().enumerate() {
        metrics.add_owned(
            format!("fleet.device.{slot}.frames"),
            mirror.frames_ok.load(Ordering::Relaxed),
        );
    }
    for (slot, &score) in monitor.scores().iter().enumerate() {
        metrics.add_owned(format!("fleet.device.{slot}.health"), u64::from(score));
    }

    let frames_lost = frames_sent.saturating_sub(frames_ok + frames_corrupt);
    let final_sweeps = ingest.sweeps.load(Ordering::Relaxed);
    sink.write(&snapshot_line(
        "fleet_final",
        final_sweeps,
        &ingest,
        &supervision,
    ));
    sink.write(&health_line(final_sweeps, &monitor));
    let exposition = monitor.prometheus(
        &fleet_counter_pairs(&ingest, &supervision),
        latency_e2e.as_ref(),
    );
    if let Some(path) = config.exposition_path.as_deref() {
        let _ = std::fs::write(path, &exposition);
    }

    FleetReport {
        devices,
        shards,
        frames_sent,
        frames_ok,
        frames_corrupt,
        frames_lost,
        seq_duplicates,
        seq_gaps,
        send_stalls,
        steals: queues.steals(),
        turns: total_turns.load(Ordering::Relaxed),
        sim_cycles: sim_cycles.load(Ordering::Relaxed),
        supervision,
        ledger: supervisor.ledger(),
        undrained_devices,
        boot_seconds,
        wall_seconds,
        per_backend,
        metrics,
        health_scores: monitor.scores().to_vec(),
        alerts: monitor.alerts().to_vec(),
        latency_e2e,
        exposition,
    }
}

/// Snapshots every slot's cumulative counters for the health monitor —
/// from the mirrors, so the monitor thread never contends on a slot lock.
fn device_counters(
    ingest: &Ingest<'_>,
    supervisor: &Supervisor,
    devices: u32,
) -> Vec<DeviceCounters> {
    (0..devices)
        .map(|slot| {
            let health = supervisor.slot_health(slot);
            let mirror = &ingest.mirrors[slot as usize];
            DeviceCounters {
                frames_ok: mirror.frames_ok.load(Ordering::Relaxed),
                violations: health.violations,
                seq_gaps: mirror.seq_gaps.load(Ordering::Relaxed),
                seq_duplicates: mirror.seq_duplicates.load(Ordering::Relaxed),
                escalated_hung: health.escalated_hung,
                escalated_trapped: health.escalated_trapped,
                restarts_used: health.restarts_used,
                parked: health.parked,
            }
        })
        .collect()
}

/// Merges the end-to-end latency histograms of every device that collects
/// one; `None` when latency collection is off fleet-wide.
fn merged_latency(supervisor: &Supervisor, devices: u32) -> Option<Histogram> {
    let mut merged: Option<Histogram> = None;
    for slot in 0..devices {
        if let Some(hist) = supervisor.slot_latency_e2e(slot) {
            match merged.as_mut() {
                Some(m) => m.merge(&hist),
                None => merged = Some(hist),
            }
        }
    }
    merged
}

/// The fleet-level counters every exposition snapshot carries.
fn fleet_counter_pairs(ingest: &Ingest<'_>, sup: &SupervisionStats) -> Vec<(&'static str, u64)> {
    vec![
        ("fleet.frames.ok", ingest.mirror_total(|m| &m.frames_ok)),
        (
            "fleet.frames.corrupt",
            ingest.mirror_total(|m| &m.frames_corrupt),
        ),
        (
            "fleet.seq.duplicates",
            ingest.mirror_total(|m| &m.seq_duplicates),
        ),
        ("fleet.seq.gaps", ingest.mirror_total(|m| &m.seq_gaps)),
        ("fleet.violations", sup.violations),
        ("fleet.devices.escalated.hung", sup.escalated_hung),
        ("fleet.devices.escalated.trapped", sup.escalated_trapped),
        ("fleet.devices.respawned", sup.respawns),
        ("fleet.devices.failed", sup.permanent_failures),
        ("fleet.runs.completed", sup.completed_runs),
    ]
}

fn health_line(sweeps: u64, monitor: &HealthMonitor) -> Json {
    Json::obj(vec![
        ("event", Json::Str("fleet_health".to_string())),
        ("sweeps", Json::Num(sweeps as f64)),
        ("health", monitor.to_json()),
    ])
}

fn snapshot_line(event: &str, sweeps: u64, ingest: &Ingest<'_>, sup: &SupervisionStats) -> Json {
    Json::obj(vec![
        ("event", Json::Str(event.to_string())),
        ("sweeps", Json::Num(sweeps as f64)),
        (
            "frames_ok",
            Json::Num(ingest.mirror_total(|m| &m.frames_ok) as f64),
        ),
        (
            "frames_corrupt",
            Json::Num(ingest.mirror_total(|m| &m.frames_corrupt) as f64),
        ),
        (
            "seq_duplicates",
            Json::Num(ingest.mirror_total(|m| &m.seq_duplicates) as f64),
        ),
        (
            "seq_gaps",
            Json::Num(ingest.mirror_total(|m| &m.seq_gaps) as f64),
        ),
        ("runs_completed", Json::Num(sup.completed_runs as f64)),
        ("escalated_hung", Json::Num(sup.escalated_hung as f64)),
        ("escalated_trapped", Json::Num(sup.escalated_trapped as f64)),
        ("respawns", Json::Num(sup.respawns as f64)),
        (
            "permanent_failures",
            Json::Num(sup.permanent_failures as f64),
        ),
        ("violations", Json::Num(sup.violations as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{call_dense_workload, SocDevice, SocDeviceConfig};

    #[test]
    fn small_soc_fleet_is_lossless_across_all_backends() {
        let program = Arc::new(call_dense_workload(4));
        let config = FleetConfig {
            devices: 6, // two slots per backend
            shards: 3,
            passes: 2_000,
            transport_capacity: 16,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config, move |_, seq, tx| {
            Box::new(SocDevice::new(
                SocDeviceConfig::new(Arc::clone(&program)),
                tx,
                seq,
            ))
        });
        assert!(report.frames_ok > 0, "fleet must stream commit logs");
        assert!(
            report.is_lossless(),
            "lost={} corrupt={} undrained={}",
            report.frames_lost,
            report.frames_corrupt,
            report.undrained_devices
        );
        assert_eq!(report.seq_duplicates, 0);
        assert_eq!(report.seq_gaps, 0);
        assert!(report.supervision.completed_runs > 0, "runs recycle");
        assert_eq!(report.supervision.permanent_failures, 0);
        assert_eq!(
            report.metrics.counter("fleet.frames.ok"),
            report.frames_ok,
            "registry mirrors the report"
        );
        // Every slot contributed and has an owned counter.
        let per_device: u64 = report
            .metrics
            .owned_counters()
            .filter(|(name, _)| name.ends_with(".frames"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(per_device, report.frames_ok);
        // A clean fleet: perfect health, zero alerts.
        assert!(report.health_scores.iter().all(|&s| s == 100));
        assert!(report.alerts.is_empty(), "clean fleet must not page");
        crate::health::validate_prometheus(&report.exposition)
            .expect("exposition must be valid Prometheus text");
    }

    #[test]
    fn drain_during_active_ingest_loses_zero_frames() {
        // Tiny transports + large passes: the drain phase starts while
        // device buffers and transports still hold frames in flight.
        let program = Arc::new(call_dense_workload(16));
        let config = FleetConfig {
            devices: 4,
            shards: 2,
            passes: 40, // cut the run phase off mid-stream
            transport_capacity: 4,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config, move |_, seq, tx| {
            Box::new(SocDevice::new(
                SocDeviceConfig::new(Arc::clone(&program)),
                tx,
                seq,
            ))
        });
        assert!(report.frames_ok > 0);
        assert_eq!(report.frames_lost, 0, "count in == count out across drain");
        assert_eq!(report.frames_corrupt, 0);
        assert_eq!(report.undrained_devices, 0);
        assert!(report.send_stalls > 0, "capacity-4 rings must backpressure");
    }

    #[test]
    fn zero_device_fleet_terminates_with_an_empty_report() {
        // The quiescence-protocol regression case: with no slots at all,
        // every worker must detect supervision quiescence from its own
        // fetch_sub result and exit without hanging the drain.
        for shards in [1, 2, 4] {
            let config = FleetConfig {
                devices: 0,
                shards,
                passes: 100,
                ..FleetConfig::default()
            };
            let report = run_fleet(&config, move |_, _, _| -> Box<dyn Device> {
                unreachable!("no slots, no boots")
            });
            assert_eq!(report.devices, 0, "{shards} shards");
            assert_eq!(report.frames_sent, 0);
            assert_eq!(report.frames_ok, 0);
            assert_eq!(report.turns, 0);
            assert!(report.is_lossless());
            assert!(report.alerts.is_empty());
        }
    }

    #[test]
    fn single_shard_single_burst_fleet_still_drains() {
        // turn_burst 1 degenerates to the old schedule; one shard means
        // the same worker supervises and ingests everything.
        let program = Arc::new(call_dense_workload(4));
        let config = FleetConfig {
            devices: 3,
            shards: 1,
            passes: 300,
            turn_burst: 1,
            transport_capacity: 8,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config, move |_, seq, tx| {
            Box::new(SocDevice::new(
                SocDeviceConfig::new(Arc::clone(&program)),
                tx,
                seq,
            ))
        });
        assert!(report.frames_ok > 0);
        assert!(report.is_lossless());
        assert_eq!((report.seq_duplicates, report.seq_gaps), (0, 0));
    }

    #[test]
    fn snapshot_file_gets_jsonl_lines() {
        let dir = std::env::temp_dir().join(format!("titancfi-fleet-snap-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("snapshots.jsonl");
        let _ = std::fs::remove_file(&path);
        let program = Arc::new(call_dense_workload(2));
        let config = FleetConfig {
            devices: 2,
            shards: 1,
            passes: 400,
            snapshot_path: Some(path.clone()),
            snapshot_every_sweeps: 8,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config, move |_, seq, tx| {
            Box::new(SocDevice::new(
                SocDeviceConfig::new(Arc::clone(&program)),
                tx,
                seq,
            ))
        });
        assert!(report.is_lossless());
        let text = std::fs::read_to_string(&path).expect("snapshot file written");
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "at least the final snapshot line");
        for line in &lines {
            let parsed = Json::parse(line).expect("every line is valid JSON");
            let event = parsed.get("event").and_then(Json::as_str).expect("event");
            if event == "fleet_health" {
                assert!(parsed.get("health").is_some());
            } else {
                assert!(parsed.get("frames_ok").is_some());
            }
        }
        assert!(
            text.contains("fleet_final"),
            "final snapshot is always appended"
        );
        assert!(
            text.contains("fleet_health"),
            "health lines ride the same cadence"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_sink_warns_but_does_not_crash_on_bad_path() {
        // A directory that does not exist: SnapshotSink::open must fall
        // back to a disabled sink (with a stderr warning) instead of
        // silently succeeding or panicking.
        let bad = std::path::Path::new("/nonexistent-titancfi-dir/snap.jsonl");
        let mut sink = SnapshotSink::open(Some(bad));
        assert!(sink.file.is_none(), "open failure leaves the sink disabled");
        // Writing to a disabled sink is a no-op.
        sink.write(&Json::obj(vec![("event", Json::Str("x".into()))]));
    }
}
