//! The fleet service: N supervised devices, sharded over a worker pool
//! with work-stealing, one transport per device, one ingest loop verifying
//! and aggregating every frame.
//!
//! Lifecycle of a run:
//!
//! 1. **Boot** — one transport per slot (backends assigned round-robin
//!    unless pinned), the supervisor boots every slot through the device
//!    factory, slot ids are dealt across the shard queues.
//! 2. **Run** — each shard worker pops a slot, runs one supervision turn,
//!    and re-enqueues it until the slot has consumed its pass budget or
//!    parks. Idle workers steal from the most loaded shard.
//! 3. **Ingest** — concurrently, the monitor loop sweeps every transport:
//!    frames are integrity-verified at ingest ([`titancfi::wire::Frame`]),
//!    per-slot sequence trackers count duplicates and gaps, counters roll
//!    into the [`titancfi_obs::SimMetrics`] registry, and a JSONL snapshot
//!    line is appended on a fixed sweep cadence.
//! 4. **Drain** — after the workers join, the service stops scheduling new
//!    sim work and alternates device flushes with ingest sweeps until every
//!    buffered frame is out of every device *and* every transport is empty,
//!    then verifies frames-in == frames-out.
//!
//! The [`FleetReport`] carries every counter the acceptance gate needs:
//! zero `frames_lost`, zero `frames_corrupt` on a clean fleet.

use crate::device::Device;
use crate::health::{Alert, DeviceCounters, HealthConfig, HealthMonitor};
use crate::supervisor::{
    DeviceFactory, FailureRecord, SupervisionConfig, SupervisionStats, Supervisor, Turn,
};
use crate::transport::{Backend, Recv, Transport, TransportStats};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use titancfi::wire::SeqTracker;
use titancfi_harness::{Json, StealQueues};
use titancfi_obs::{Histogram, SimMetrics};

/// Fleet-wide configuration.
pub struct FleetConfig {
    /// Number of device slots.
    pub devices: u32,
    /// Worker shards (threads) driving the devices.
    pub shards: usize,
    /// Supervision turns each slot is scheduled for. The run phase ends
    /// when every slot has consumed its passes (or parked).
    pub passes: u64,
    /// Per-transport capacity in frames.
    pub transport_capacity: usize,
    /// Pin every slot to one backend, or `None` for round-robin across
    /// [`Backend::ALL`].
    pub backend: Option<Backend>,
    /// Supervision policy.
    pub supervision: SupervisionConfig,
    /// Append JSONL telemetry snapshots here (one line per cadence tick).
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Ingest sweeps between snapshot lines.
    pub snapshot_every_sweeps: u64,
    /// Health-monitor thresholds; the monitor evaluates once per snapshot
    /// cadence tick plus once after the drain phase.
    pub health: HealthConfig,
    /// Overwrite a Prometheus-text exposition snapshot here at each
    /// evaluation (the scrape-endpoint analog for a file-based fleet).
    pub exposition_path: Option<std::path::PathBuf>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            devices: 8,
            shards: 4,
            passes: 64,
            transport_capacity: 64,
            backend: None,
            supervision: SupervisionConfig::default(),
            snapshot_path: None,
            snapshot_every_sweeps: 64,
            health: HealthConfig::default(),
            exposition_path: None,
        }
    }
}

/// Everything a finished fleet run reports.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Device slots.
    pub devices: u32,
    /// Worker shards.
    pub shards: usize,
    /// Frames accepted by the transports (device side).
    pub frames_sent: u64,
    /// Frames verified and ingested (monitor side).
    pub frames_ok: u64,
    /// Frames rejected by the integrity word at ingest.
    pub frames_corrupt: u64,
    /// `frames_sent - frames_ok - frames_corrupt`: anything a transport
    /// accepted but never delivered. Zero on a healthy fleet.
    pub frames_lost: u64,
    /// Duplicate sequence numbers observed at ingest.
    pub seq_duplicates: u64,
    /// Sequence gaps observed at ingest.
    pub seq_gaps: u64,
    /// Sends refused with `WouldBlock` (explicit backpressure stalls).
    pub send_stalls: u64,
    /// Work-stealing operations between shards.
    pub steals: u64,
    /// Supervision turns executed.
    pub turns: u64,
    /// Simulated cycles advanced across the whole fleet.
    pub sim_cycles: u64,
    /// Supervision counters (escalations, respawns, completions,
    /// violations).
    pub supervision: SupervisionStats,
    /// Permanent-failure ledger.
    pub ledger: Vec<FailureRecord>,
    /// Devices whose buffers could not be fully drained at shutdown.
    /// Nonzero means the shutdown protocol failed — an unreaped device.
    pub undrained_devices: u32,
    /// Wall-clock seconds for the run+drain phases.
    pub wall_seconds: f64,
    /// Per-backend transport counters, in [`Backend::ALL`] order
    /// (absent backends have all-zero stats).
    pub per_backend: Vec<(Backend, TransportStats)>,
    /// The aggregated metrics registry (counters mirrored above plus
    /// per-device owned counters).
    pub metrics: SimMetrics,
    /// Final per-device health scores (0–100).
    pub health_scores: Vec<u8>,
    /// Every alert the health monitor raised, in fire order.
    pub alerts: Vec<Alert>,
    /// Merged end-to-end latency histogram across devices that collected
    /// one ([`crate::device::SocDeviceConfig::latency`]).
    pub latency_e2e: Option<Histogram>,
    /// The final Prometheus-text exposition snapshot.
    pub exposition: String,
}

impl FleetReport {
    /// The acceptance predicate: every accepted frame delivered and
    /// verified, nothing corrupt, nobody left undrained.
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.frames_lost == 0 && self.frames_corrupt == 0 && self.undrained_devices == 0
    }

    /// Commit logs ingested per wall-clock second.
    #[must_use]
    pub fn logs_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.frames_ok as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Ingest-side state: per-slot sequence trackers plus fleet totals.
struct Ingest<'a> {
    transports: &'a [Arc<dyn Transport>],
    trackers: Vec<SeqTracker>,
    frames_ok: u64,
    frames_corrupt: u64,
    per_slot_ok: Vec<u64>,
}

impl<'a> Ingest<'a> {
    fn new(transports: &'a [Arc<dyn Transport>]) -> Ingest<'a> {
        Ingest {
            transports,
            trackers: (0..transports.len()).map(|_| SeqTracker::new()).collect(),
            frames_ok: 0,
            frames_corrupt: 0,
            per_slot_ok: vec![0; transports.len()],
        }
    }

    /// One pass over every transport, draining each. Returns frames moved.
    fn sweep(&mut self) -> u64 {
        let mut moved = 0;
        for (slot, tx) in self.transports.iter().enumerate() {
            loop {
                match tx.try_recv() {
                    Recv::Frame(frame) => {
                        self.trackers[slot].observe(frame.seq);
                        self.frames_ok += 1;
                        self.per_slot_ok[slot] += 1;
                        moved += 1;
                    }
                    Recv::Corrupt => {
                        self.frames_corrupt += 1;
                        moved += 1;
                    }
                    Recv::Empty => break,
                }
            }
        }
        moved
    }

    fn seq_duplicates(&self) -> u64 {
        self.trackers.iter().map(|t| t.duplicates).sum()
    }

    fn seq_gaps(&self) -> u64 {
        self.trackers.iter().map(|t| t.gaps).sum()
    }
}

/// A JSONL telemetry sink that appends one snapshot object per line.
struct SnapshotSink {
    file: Option<std::fs::File>,
}

impl SnapshotSink {
    fn open(path: Option<&std::path::Path>) -> SnapshotSink {
        SnapshotSink {
            file: path.and_then(|p| {
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)
                    .ok()
            }),
        }
    }

    fn write(&mut self, line: &Json) {
        if let Some(file) = self.file.as_mut() {
            let _ = writeln!(file, "{}", line.encode());
        }
    }
}

/// Runs a fleet to completion: boot, run, ingest, drain, report.
///
/// The `factory` is called for every boot and respawn with
/// `(slot, start_seq, transport)` and must return a device wired to that
/// transport.
#[allow(clippy::too_many_lines)]
pub fn run_fleet<F>(config: &FleetConfig, factory: F) -> FleetReport
where
    F: Fn(u32, u16, Arc<dyn Transport>) -> Box<dyn Device> + Send + Sync + 'static,
{
    let started = std::time::Instant::now();
    let devices = config.devices.max(1);
    let shards = config.shards.max(1);

    // One transport per slot, backends round-robin unless pinned.
    let transports: Vec<Arc<dyn Transport>> = (0..devices)
        .map(|slot| {
            let kind = config
                .backend
                .unwrap_or(Backend::ALL[slot as usize % Backend::ALL.len()]);
            Arc::from(kind.build(config.transport_capacity))
        })
        .collect();

    let supervisor = {
        let transports = transports.clone();
        Supervisor::new(
            devices,
            config.supervision,
            Box::new(move |slot, seq| factory(slot, seq, Arc::clone(&transports[slot as usize])))
                as DeviceFactory,
        )
    };

    let queues: StealQueues<u32> = StealQueues::new(shards);
    for slot in 0..devices {
        queues.push(slot as usize % shards, slot);
    }

    let turns_done: Vec<AtomicU64> = (0..devices).map(|_| AtomicU64::new(0)).collect();
    let sim_cycles = AtomicU64::new(0);
    let total_turns = AtomicU64::new(0);
    // Workers hold `in_flight` while they own a popped slot; a worker may
    // exit only when the queues are empty AND nothing is in flight — an
    // in-flight slot may still be re-enqueued, so "empty" alone is not
    // quiescence. `finished` counts exited workers so the ingest loop knows
    // when no more frames can possibly be produced.
    let in_flight = AtomicU64::new(0);
    let finished = AtomicU64::new(0);
    let mut ingest = Ingest::new(&transports);
    let mut sink = SnapshotSink::open(config.snapshot_path.as_deref());
    let mut sweeps: u64 = 0;
    let mut monitor = HealthMonitor::new(devices as usize, config.health);

    std::thread::scope(|scope| {
        // Shard workers: run supervision turns until every slot's pass
        // budget is spent.
        for shard in 0..shards {
            let queues = &queues;
            let supervisor = &supervisor;
            let turns_done = &turns_done;
            let sim_cycles = &sim_cycles;
            let total_turns = &total_turns;
            let in_flight = &in_flight;
            let finished = &finished;
            scope.spawn(move || {
                loop {
                    in_flight.fetch_add(1, Ordering::AcqRel);
                    let Some(slot) = queues.pop(shard) else {
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                        if in_flight.load(Ordering::Acquire) == 0 && queues.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    let turn = supervisor.turn(slot);
                    total_turns.fetch_add(1, Ordering::Relaxed);
                    // A pass is consumed only by *work* (cycles simulated,
                    // frames moved, a respawn). A backpressured or idle
                    // poll reschedules for free — burning the budget on
                    // busy-waits would end the run phase before the ingest
                    // loop ever had a chance to relieve the transports.
                    let worked = match turn {
                        Turn::Progress(out) | Turn::Recycled(out) => {
                            sim_cycles.fetch_add(out.cycles, Ordering::Relaxed);
                            Some(out.cycles > 0 || out.frames > 0)
                        }
                        Turn::Respawned(_) => Some(true),
                        Turn::Parked(_) | Turn::Dead => None,
                    };
                    match worked {
                        Some(true) => {
                            let done =
                                turns_done[slot as usize].fetch_add(1, Ordering::Relaxed) + 1;
                            if done < config.passes {
                                queues.push(shard, slot);
                            }
                        }
                        Some(false) => {
                            queues.push(shard, slot);
                            std::thread::yield_now();
                        }
                        None => {}
                    }
                    // The re-enqueue (if any) happens before the in-flight
                    // drop, so quiescence checks never miss a live slot.
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }

        // Ingest loop on the scope's main thread: sweep until every worker
        // has exited AND a final sweep moves nothing (no producer left, no
        // frame in any transport).
        loop {
            let moved = ingest.sweep();
            sweeps += 1;
            if sweeps.is_multiple_of(config.snapshot_every_sweeps) {
                let stats = supervisor.stats();
                sink.write(&snapshot_line("fleet_snapshot", sweeps, &ingest, &stats));
                let latency = merged_latency(&supervisor, devices);
                monitor.evaluate(
                    &device_counters(&ingest, &supervisor, devices),
                    latency.as_ref().map(|h| h.percentile(0.99)),
                );
                sink.write(&health_line(sweeps, &monitor));
                if let Some(path) = config.exposition_path.as_deref() {
                    let text =
                        monitor.prometheus(&fleet_counter_pairs(&ingest, &stats), latency.as_ref());
                    let _ = std::fs::write(path, text);
                }
            }
            if finished.load(Ordering::Acquire) == shards as u64 && moved == 0 {
                break;
            }
            if moved == 0 {
                std::thread::yield_now();
            }
        }
    });

    // Drain phase: no more sim work; alternate flushes with sweeps until
    // every device buffer and every transport is empty (or stops making
    // progress, which the report then calls out as undrained).
    let mut undrained_devices = 0u32;
    loop {
        let buffered: usize = (0..devices).map(|s| supervisor.flush(s)).sum();
        let moved = ingest.sweep();
        if buffered == 0 && moved == 0 {
            break;
        }
        if moved == 0 && buffered > 0 {
            // Flushes are blocked yet ingest moves nothing: wedged buffers.
            undrained_devices = (0..devices).filter(|&s| supervisor.flush(s) > 0).count() as u32;
            break;
        }
    }

    // Final health evaluation: even a run shorter than one snapshot
    // cadence gets its counters through the alert engine, and the drain
    // phase's last gaps/violations are visible to it.
    let latency_e2e = merged_latency(&supervisor, devices);
    monitor.evaluate(
        &device_counters(&ingest, &supervisor, devices),
        latency_e2e.as_ref().map(|h| h.percentile(0.99)),
    );

    let per_backend: Vec<(Backend, TransportStats)> = Backend::ALL
        .iter()
        .map(|&kind| {
            let mut total = TransportStats::default();
            for tx in transports.iter().filter(|t| t.backend() == kind) {
                let s = tx.stats();
                total.sent += s.sent;
                total.received += s.received;
                total.corrupt += s.corrupt;
                total.would_block += s.would_block;
            }
            (kind, total)
        })
        .collect();

    let frames_sent: u64 = per_backend.iter().map(|(_, s)| s.sent).sum();
    let send_stalls: u64 = per_backend.iter().map(|(_, s)| s.would_block).sum();
    let supervision = supervisor.stats();
    let wall_seconds = started.elapsed().as_secs_f64();

    // Fold everything into the metrics registry: fleet-wide static names
    // plus one owned counter per device slot.
    let mut metrics = SimMetrics::new();
    metrics.add("fleet.frames.sent", frames_sent);
    metrics.add("fleet.frames.ok", ingest.frames_ok);
    metrics.add("fleet.frames.corrupt", ingest.frames_corrupt);
    metrics.add("fleet.seq.duplicates", ingest.seq_duplicates());
    metrics.add("fleet.seq.gaps", ingest.seq_gaps());
    metrics.add("fleet.send.stalls", send_stalls);
    metrics.add("fleet.steals", queues.steals());
    metrics.add("fleet.turns", total_turns.load(Ordering::Relaxed));
    metrics.add("fleet.sim.cycles", sim_cycles.load(Ordering::Relaxed));
    metrics.add("fleet.runs.completed", supervision.completed_runs);
    metrics.add("fleet.devices.escalated.hung", supervision.escalated_hung);
    metrics.add(
        "fleet.devices.escalated.trapped",
        supervision.escalated_trapped,
    );
    metrics.add("fleet.devices.respawned", supervision.respawns);
    metrics.add("fleet.devices.failed", supervision.permanent_failures);
    metrics.add("fleet.violations", supervision.violations);
    metrics.add("fleet.alerts", monitor.alerts().len() as u64);
    for (slot, &ok) in ingest.per_slot_ok.iter().enumerate() {
        metrics.add_owned(format!("fleet.device.{slot}.frames"), ok);
    }
    for (slot, &score) in monitor.scores().iter().enumerate() {
        metrics.add_owned(format!("fleet.device.{slot}.health"), u64::from(score));
    }

    let frames_lost = frames_sent.saturating_sub(ingest.frames_ok + ingest.frames_corrupt);
    sink.write(&snapshot_line("fleet_final", sweeps, &ingest, &supervision));
    sink.write(&health_line(sweeps, &monitor));
    let exposition = monitor.prometheus(
        &fleet_counter_pairs(&ingest, &supervision),
        latency_e2e.as_ref(),
    );
    if let Some(path) = config.exposition_path.as_deref() {
        let _ = std::fs::write(path, &exposition);
    }

    FleetReport {
        devices,
        shards,
        frames_sent,
        frames_ok: ingest.frames_ok,
        frames_corrupt: ingest.frames_corrupt,
        frames_lost,
        seq_duplicates: ingest.seq_duplicates(),
        seq_gaps: ingest.seq_gaps(),
        send_stalls,
        steals: queues.steals(),
        turns: total_turns.load(Ordering::Relaxed),
        sim_cycles: sim_cycles.load(Ordering::Relaxed),
        supervision,
        ledger: supervisor.ledger(),
        undrained_devices,
        wall_seconds,
        per_backend,
        metrics,
        health_scores: monitor.scores().to_vec(),
        alerts: monitor.alerts().to_vec(),
        latency_e2e,
        exposition,
    }
}

/// Snapshots every slot's cumulative counters for the health monitor.
fn device_counters(
    ingest: &Ingest<'_>,
    supervisor: &Supervisor,
    devices: u32,
) -> Vec<DeviceCounters> {
    (0..devices)
        .map(|slot| {
            let health = supervisor.slot_health(slot);
            let tracker = &ingest.trackers[slot as usize];
            DeviceCounters {
                frames_ok: ingest.per_slot_ok[slot as usize],
                violations: health.violations,
                seq_gaps: tracker.gaps,
                seq_duplicates: tracker.duplicates,
                escalated_hung: health.escalated_hung,
                escalated_trapped: health.escalated_trapped,
                restarts_used: health.restarts_used,
                parked: health.parked,
            }
        })
        .collect()
}

/// Merges the end-to-end latency histograms of every device that collects
/// one; `None` when latency collection is off fleet-wide.
fn merged_latency(supervisor: &Supervisor, devices: u32) -> Option<Histogram> {
    let mut merged: Option<Histogram> = None;
    for slot in 0..devices {
        if let Some(hist) = supervisor.slot_latency_e2e(slot) {
            match merged.as_mut() {
                Some(m) => m.merge(&hist),
                None => merged = Some(hist),
            }
        }
    }
    merged
}

/// The fleet-level counters every exposition snapshot carries.
fn fleet_counter_pairs(ingest: &Ingest<'_>, sup: &SupervisionStats) -> Vec<(&'static str, u64)> {
    vec![
        ("fleet.frames.ok", ingest.frames_ok),
        ("fleet.frames.corrupt", ingest.frames_corrupt),
        ("fleet.seq.duplicates", ingest.seq_duplicates()),
        ("fleet.seq.gaps", ingest.seq_gaps()),
        ("fleet.violations", sup.violations),
        ("fleet.devices.escalated.hung", sup.escalated_hung),
        ("fleet.devices.escalated.trapped", sup.escalated_trapped),
        ("fleet.devices.respawned", sup.respawns),
        ("fleet.devices.failed", sup.permanent_failures),
        ("fleet.runs.completed", sup.completed_runs),
    ]
}

fn health_line(sweeps: u64, monitor: &HealthMonitor) -> Json {
    Json::obj(vec![
        ("event", Json::Str("fleet_health".to_string())),
        ("sweeps", Json::Num(sweeps as f64)),
        ("health", monitor.to_json()),
    ])
}

fn snapshot_line(event: &str, sweeps: u64, ingest: &Ingest<'_>, sup: &SupervisionStats) -> Json {
    Json::obj(vec![
        ("event", Json::Str(event.to_string())),
        ("sweeps", Json::Num(sweeps as f64)),
        ("frames_ok", Json::Num(ingest.frames_ok as f64)),
        ("frames_corrupt", Json::Num(ingest.frames_corrupt as f64)),
        ("seq_duplicates", Json::Num(ingest.seq_duplicates() as f64)),
        ("seq_gaps", Json::Num(ingest.seq_gaps() as f64)),
        ("runs_completed", Json::Num(sup.completed_runs as f64)),
        ("escalated_hung", Json::Num(sup.escalated_hung as f64)),
        ("escalated_trapped", Json::Num(sup.escalated_trapped as f64)),
        ("respawns", Json::Num(sup.respawns as f64)),
        (
            "permanent_failures",
            Json::Num(sup.permanent_failures as f64),
        ),
        ("violations", Json::Num(sup.violations as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{call_dense_workload, SocDevice, SocDeviceConfig};

    #[test]
    fn small_soc_fleet_is_lossless_across_all_backends() {
        let program = Arc::new(call_dense_workload(4));
        let config = FleetConfig {
            devices: 6, // two slots per backend
            shards: 3,
            passes: 2_000,
            transport_capacity: 16,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config, move |_, seq, tx| {
            Box::new(SocDevice::new(
                SocDeviceConfig::new(Arc::clone(&program)),
                tx,
                seq,
            ))
        });
        assert!(report.frames_ok > 0, "fleet must stream commit logs");
        assert!(
            report.is_lossless(),
            "lost={} corrupt={} undrained={}",
            report.frames_lost,
            report.frames_corrupt,
            report.undrained_devices
        );
        assert_eq!(report.seq_duplicates, 0);
        assert_eq!(report.seq_gaps, 0);
        assert!(report.supervision.completed_runs > 0, "runs recycle");
        assert_eq!(report.supervision.permanent_failures, 0);
        assert_eq!(
            report.metrics.counter("fleet.frames.ok"),
            report.frames_ok,
            "registry mirrors the report"
        );
        // Every slot contributed and has an owned counter.
        let per_device: u64 = report
            .metrics
            .owned_counters()
            .filter(|(name, _)| name.ends_with(".frames"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(per_device, report.frames_ok);
        // A clean fleet: perfect health, zero alerts.
        assert!(report.health_scores.iter().all(|&s| s == 100));
        assert!(report.alerts.is_empty(), "clean fleet must not page");
        crate::health::validate_prometheus(&report.exposition)
            .expect("exposition must be valid Prometheus text");
    }

    #[test]
    fn drain_during_active_ingest_loses_zero_frames() {
        // Tiny transports + large passes: the drain phase starts while
        // device buffers and transports still hold frames in flight.
        let program = Arc::new(call_dense_workload(16));
        let config = FleetConfig {
            devices: 4,
            shards: 2,
            passes: 40, // cut the run phase off mid-stream
            transport_capacity: 4,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config, move |_, seq, tx| {
            Box::new(SocDevice::new(
                SocDeviceConfig::new(Arc::clone(&program)),
                tx,
                seq,
            ))
        });
        assert!(report.frames_ok > 0);
        assert_eq!(report.frames_lost, 0, "count in == count out across drain");
        assert_eq!(report.frames_corrupt, 0);
        assert_eq!(report.undrained_devices, 0);
        assert!(report.send_stalls > 0, "capacity-4 rings must backpressure");
    }

    #[test]
    fn snapshot_file_gets_jsonl_lines() {
        let dir = std::env::temp_dir().join(format!("titancfi-fleet-snap-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("snapshots.jsonl");
        let _ = std::fs::remove_file(&path);
        let program = Arc::new(call_dense_workload(2));
        let config = FleetConfig {
            devices: 2,
            shards: 1,
            passes: 400,
            snapshot_path: Some(path.clone()),
            snapshot_every_sweeps: 8,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config, move |_, seq, tx| {
            Box::new(SocDevice::new(
                SocDeviceConfig::new(Arc::clone(&program)),
                tx,
                seq,
            ))
        });
        assert!(report.is_lossless());
        let text = std::fs::read_to_string(&path).expect("snapshot file written");
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "at least the final snapshot line");
        for line in &lines {
            let parsed = Json::parse(line).expect("every line is valid JSON");
            let event = parsed.get("event").and_then(Json::as_str).expect("event");
            if event == "fleet_health" {
                assert!(parsed.get("health").is_some());
            } else {
                assert!(parsed.get("frames_ok").is_some());
            }
        }
        assert!(
            text.contains("fleet_final"),
            "final snapshot is always appended"
        );
        assert!(
            text.contains("fleet_health"),
            "health lines ride the same cadence"
        );
        let _ = std::fs::remove_file(&path);
    }
}
