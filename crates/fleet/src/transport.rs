//! Multi-backend commit-log transports.
//!
//! Every backend carries the same 32-byte wire frame ([`titancfi::wire`]):
//! the 28-byte commit-log record plus the resilience layer's seq+checksum
//! integrity word. The monitor side decodes and *verifies* each frame at
//! ingest, so corruption anywhere between a device and the fleet service
//! is detected and counted rather than silently aggregated — the same
//! property the mailbox hardware enforces at doorbell-ring time, extended
//! to the fleet's long-haul links.
//!
//! Three backends model the deployment spectrum:
//!
//! * [`InProcRing`] — a bounded in-process ring of frames, the cheapest
//!   same-address-space channel (device thread → monitor thread);
//! * [`ShmRing`] — a shared-memory-style ring: one flat byte region laid
//!   out exactly as an mmap'd segment would be (head/tail cursors stored
//!   little-endian *inside* the region, fixed 32-byte slots after them),
//!   so producer and consumer communicate only through serialized bytes;
//! * [`StreamSocket`] — a length-prefixed byte stream over a bounded
//!   duplex pipe, chunked on the receive side to model TCP-style partial
//!   delivery; frames are reassembled from arbitrary chunk boundaries.
//!
//! Backpressure is explicit everywhere: a full backend returns
//! [`SendError::WouldBlock`] and counts the stall — no backend ever spins,
//! drops, or silently grows.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use titancfi::wire::{Frame, FRAME_BYTES};

/// The backend kinds, in round-robin assignment order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Bounded in-process ring buffer of frames.
    InProcRing,
    /// Shared-memory-style byte ring (cursors live inside the region).
    ShmRing,
    /// Length-prefixed byte stream with chunked delivery.
    StreamSocket,
}

impl Backend {
    /// Every backend, in assignment order.
    pub const ALL: [Backend; 3] = [Backend::InProcRing, Backend::ShmRing, Backend::StreamSocket];

    /// Stable kebab-case name (metric keys, reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::InProcRing => "inproc-ring",
            Backend::ShmRing => "shm-ring",
            Backend::StreamSocket => "stream-socket",
        }
    }

    /// Builds a transport of this kind with room for `capacity` frames.
    #[must_use]
    pub fn build(self, capacity: usize) -> Box<dyn Transport> {
        match self {
            Backend::InProcRing => Box::new(InProcRing::new(capacity)),
            Backend::ShmRing => Box::new(ShmRing::new(capacity)),
            Backend::StreamSocket => Box::new(StreamSocket::new(capacity)),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a send did not happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The backend is full; retry after the monitor drains it. Counted in
    /// [`TransportStats::would_block`].
    WouldBlock,
}

/// One receive attempt's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recv {
    /// Nothing available right now.
    Empty,
    /// A verified frame.
    Frame(Frame),
    /// A frame arrived but failed integrity verification; counted in
    /// [`TransportStats::corrupt`].
    Corrupt,
}

/// Counters every backend keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames accepted by `send`.
    pub sent: u64,
    /// Frames handed out by `try_recv` (verified only).
    pub received: u64,
    /// Frames rejected at ingest by the integrity word.
    pub corrupt: u64,
    /// Sends refused with [`SendError::WouldBlock`].
    pub would_block: u64,
}

/// A device→monitor commit-log channel. Implementations use interior
/// mutability: the device side calls [`Transport::send`], the monitor side
/// [`Transport::try_recv`], concurrently.
pub trait Transport: Send + Sync {
    /// Which backend this is.
    fn backend(&self) -> Backend;
    /// Enqueues one frame, or reports backpressure.
    ///
    /// # Errors
    ///
    /// [`SendError::WouldBlock`] when the backend is at capacity.
    fn send(&self, frame: &Frame) -> Result<(), SendError>;
    /// Dequeues and verifies one frame, if available.
    fn try_recv(&self) -> Recv;
    /// Counter snapshot.
    fn stats(&self) -> TransportStats;
}

/// Shared counter plumbing for the three backends.
#[derive(Debug, Default)]
struct Counters {
    sent: AtomicU64,
    received: AtomicU64,
    corrupt: AtomicU64,
    would_block: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            sent: self.sent.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            would_block: self.would_block.load(Ordering::Relaxed),
        }
    }

    /// Classifies decoded bytes, bumping the matching counter.
    fn classify(&self, bytes: &[u8]) -> Recv {
        match Frame::decode(bytes) {
            Ok(frame) => {
                self.received.fetch_add(1, Ordering::Relaxed);
                Recv::Frame(frame)
            }
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                Recv::Corrupt
            }
        }
    }
}

// ---- backend 1: in-process ring ----

/// Bounded in-process ring of encoded frames.
#[derive(Debug)]
pub struct InProcRing {
    ring: Mutex<VecDeque<[u8; FRAME_BYTES]>>,
    capacity: usize,
    counters: Counters,
}

impl InProcRing {
    /// A ring holding at most `capacity` frames (clamped to at least one).
    #[must_use]
    pub fn new(capacity: usize) -> InProcRing {
        InProcRing {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            counters: Counters::default(),
        }
    }
}

impl Transport for InProcRing {
    fn backend(&self) -> Backend {
        Backend::InProcRing
    }

    fn send(&self, frame: &Frame) -> Result<(), SendError> {
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() >= self.capacity {
            self.counters.would_block.fetch_add(1, Ordering::Relaxed);
            return Err(SendError::WouldBlock);
        }
        ring.push_back(frame.encode());
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn try_recv(&self) -> Recv {
        let popped = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front();
        match popped {
            Some(bytes) => self.counters.classify(&bytes),
            None => Recv::Empty,
        }
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

// ---- backend 2: shared-memory-style byte ring ----

/// Byte offsets of the ring's header fields within the region — the layout
/// a real mmap'd segment would carry.
const SHM_HEAD: usize = 0; // next slot to read (monotonic u64, LE)
const SHM_TAIL: usize = 8; // next slot to write (monotonic u64, LE)
const SHM_SLOTS: usize = 16; // fixed 32-byte slots from here

/// Shared-memory-style ring: producer and consumer touch nothing but one
/// flat byte region, cursors included, exactly as two processes sharing an
/// mmap would. The mutex stands in for the memory system's coherence; all
/// *information* crosses as little-endian bytes.
#[derive(Debug)]
pub struct ShmRing {
    region: Mutex<Vec<u8>>,
    capacity: usize,
    counters: Counters,
}

impl ShmRing {
    /// A region with `capacity` frame slots (clamped to at least one).
    #[must_use]
    pub fn new(capacity: usize) -> ShmRing {
        let capacity = capacity.max(1);
        ShmRing {
            region: Mutex::new(vec![0u8; SHM_SLOTS + capacity * FRAME_BYTES]),
            capacity,
            counters: Counters::default(),
        }
    }

    fn cursor(region: &[u8], at: usize) -> u64 {
        u64::from_le_bytes(region[at..at + 8].try_into().expect("8-byte cursor"))
    }

    fn set_cursor(region: &mut [u8], at: usize, value: u64) {
        region[at..at + 8].copy_from_slice(&value.to_le_bytes());
    }

    fn slot_range(&self, index: u64) -> std::ops::Range<usize> {
        let slot = (index % self.capacity as u64) as usize;
        let start = SHM_SLOTS + slot * FRAME_BYTES;
        start..start + FRAME_BYTES
    }

    /// Test/fuzz hook: flips one bit inside the oldest queued frame,
    /// modelling in-flight shared-memory corruption.
    pub fn corrupt_oldest(&self, bit: u32) {
        let mut region = self
            .region
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let head = Self::cursor(&region, SHM_HEAD);
        let tail = Self::cursor(&region, SHM_TAIL);
        if head == tail {
            return; // empty
        }
        let range = self.slot_range(head);
        let byte = range.start + (bit as usize / 8) % FRAME_BYTES;
        region[byte] ^= 1 << (bit % 8);
    }
}

impl Transport for ShmRing {
    fn backend(&self) -> Backend {
        Backend::ShmRing
    }

    fn send(&self, frame: &Frame) -> Result<(), SendError> {
        let mut region = self
            .region
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let head = Self::cursor(&region, SHM_HEAD);
        let tail = Self::cursor(&region, SHM_TAIL);
        if tail - head >= self.capacity as u64 {
            self.counters.would_block.fetch_add(1, Ordering::Relaxed);
            return Err(SendError::WouldBlock);
        }
        let range = self.slot_range(tail);
        region[range].copy_from_slice(&frame.encode());
        Self::set_cursor(&mut region, SHM_TAIL, tail + 1);
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn try_recv(&self) -> Recv {
        let bytes = {
            let mut region = self
                .region
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let head = Self::cursor(&region, SHM_HEAD);
            let tail = Self::cursor(&region, SHM_TAIL);
            if head == tail {
                return Recv::Empty;
            }
            let range = self.slot_range(head);
            let mut bytes = [0u8; FRAME_BYTES];
            bytes.copy_from_slice(&region[range]);
            Self::set_cursor(&mut region, SHM_HEAD, head + 1);
            bytes
        };
        self.counters.classify(&bytes)
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

// ---- backend 3: length-prefixed byte stream ----

/// Length prefix size: a little-endian `u32` frame length.
const LEN_PREFIX: usize = 4;

#[derive(Debug)]
struct StreamInner {
    /// In-flight bytes, producer → consumer.
    pipe: VecDeque<u8>,
    /// Consumer-side reassembly buffer (bytes taken off the pipe but not
    /// yet forming a whole frame).
    reassembly: Vec<u8>,
}

/// Length-prefixed byte-stream backend over a bounded duplex pipe. The
/// receive side pulls at most `chunk` bytes per call before re-parsing, so
/// frames routinely straddle read boundaries — the codec reassembles them,
/// as a real socket consumer must.
#[derive(Debug)]
pub struct StreamSocket {
    inner: Mutex<StreamInner>,
    /// Pipe capacity in bytes.
    capacity_bytes: usize,
    /// Max bytes moved pipe→reassembly per `try_recv`.
    chunk: usize,
    counters: Counters,
}

impl StreamSocket {
    /// A stream able to buffer `capacity` frames' worth of bytes, with a
    /// default receive chunk that forces partial-frame reassembly.
    #[must_use]
    pub fn new(capacity: usize) -> StreamSocket {
        StreamSocket::with_chunk(capacity, FRAME_BYTES + LEN_PREFIX / 2)
    }

    /// Full control over the receive chunk size (bytes per `try_recv`).
    #[must_use]
    pub fn with_chunk(capacity: usize, chunk: usize) -> StreamSocket {
        StreamSocket {
            inner: Mutex::new(StreamInner {
                pipe: VecDeque::new(),
                reassembly: Vec::new(),
            }),
            capacity_bytes: capacity.max(1) * (FRAME_BYTES + LEN_PREFIX),
            chunk: chunk.max(1),
            counters: Counters::default(),
        }
    }
}

impl Transport for StreamSocket {
    fn backend(&self) -> Backend {
        Backend::StreamSocket
    }

    fn send(&self, frame: &Frame) -> Result<(), SendError> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.pipe.len() + LEN_PREFIX + FRAME_BYTES > self.capacity_bytes {
            self.counters.would_block.fetch_add(1, Ordering::Relaxed);
            return Err(SendError::WouldBlock);
        }
        inner
            .pipe
            .extend((FRAME_BYTES as u32).to_le_bytes().iter().copied());
        inner.pipe.extend(frame.encode().iter().copied());
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn try_recv(&self) -> Recv {
        let bytes = {
            let mut inner = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Move up to one chunk off the pipe, then try to parse a frame
            // from the reassembly buffer. Loop until a frame completes or
            // the pipe runs dry, so a large chunk drains eagerly while a
            // tiny chunk still makes progress one call at a time.
            loop {
                if inner.reassembly.len() >= LEN_PREFIX {
                    let len = u32::from_le_bytes(
                        inner.reassembly[..LEN_PREFIX].try_into().expect("prefix"),
                    ) as usize;
                    if inner.reassembly.len() >= LEN_PREFIX + len {
                        let frame: Vec<u8> = inner
                            .reassembly
                            .drain(..LEN_PREFIX + len)
                            .skip(LEN_PREFIX)
                            .collect();
                        break frame;
                    }
                }
                if inner.pipe.is_empty() {
                    return Recv::Empty;
                }
                let take = self.chunk.min(inner.pipe.len());
                let moved: Vec<u8> = inner.pipe.drain(..take).collect();
                inner.reassembly.extend_from_slice(&moved);
            }
        };
        self.counters.classify(&bytes)
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

/// Routes a commit-log stream through a fresh transport of `kind` and
/// returns the reassembled logs — the fuzz oracle's "fleet ingest" cell.
/// The transport is sized *smaller* than the stream so the pump exercises
/// real backpressure (send until `WouldBlock`, drain, repeat).
///
/// # Errors
///
/// Reports corrupt frames, out-of-order sequence numbers, or a stuck pump
/// as a human-readable string.
pub fn ingest_roundtrip(
    kind: Backend,
    logs: &[titancfi::CommitLog],
) -> Result<Vec<titancfi::CommitLog>, String> {
    let transport = kind.build(8);
    let mut tracker = titancfi::wire::SeqTracker::new();
    let mut out = Vec::with_capacity(logs.len());
    let mut next = 0usize;
    let mut seq: u16 = 0;
    while out.len() < logs.len() {
        let mut progressed = false;
        while next < logs.len() {
            seq = seq.wrapping_add(1);
            let frame = Frame {
                seq,
                log: logs[next],
            };
            match transport.send(&frame) {
                Ok(()) => {
                    next += 1;
                    progressed = true;
                }
                Err(SendError::WouldBlock) => {
                    seq = seq.wrapping_sub(1);
                    break;
                }
            }
        }
        loop {
            match transport.try_recv() {
                Recv::Frame(frame) => {
                    if !tracker.observe(frame.seq) {
                        return Err(format!(
                            "{kind}: out-of-order frame (seq {}, dups {}, gaps {})",
                            frame.seq, tracker.duplicates, tracker.gaps
                        ));
                    }
                    out.push(frame.log);
                    progressed = true;
                }
                Recv::Corrupt => return Err(format!("{kind}: corrupt frame at ingest")),
                Recv::Empty => break,
            }
        }
        if !progressed {
            return Err(format!(
                "{kind}: pump stuck at {}/{} logs",
                out.len(),
                logs.len()
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use titancfi::CommitLog;

    fn log(i: u64) -> CommitLog {
        CommitLog {
            pc: 0x8000_0000 + i * 4,
            insn: 0x0000_8067,
            next: 0x8000_0004 + i * 4,
            target: 0x9000_0000 + i * 8,
        }
    }

    fn frame(i: u64) -> Frame {
        Frame {
            seq: (i as u16).wrapping_add(1),
            log: log(i),
        }
    }

    fn roundtrip(t: &dyn Transport) {
        for i in 0..5 {
            t.send(&frame(i)).expect("fits");
        }
        for i in 0..5 {
            assert_eq!(t.try_recv(), Recv::Frame(frame(i)), "{} order", t.backend());
        }
        assert_eq!(t.try_recv(), Recv::Empty);
        let s = t.stats();
        assert_eq!((s.sent, s.received, s.corrupt), (5, 5, 0));
    }

    #[test]
    fn all_backends_roundtrip_in_order() {
        for kind in Backend::ALL {
            roundtrip(kind.build(8).as_ref());
        }
    }

    #[test]
    fn inproc_ring_full_is_explicit_backpressure() {
        let t = InProcRing::new(3);
        for i in 0..3 {
            t.send(&frame(i)).expect("fits");
        }
        assert_eq!(t.send(&frame(3)), Err(SendError::WouldBlock));
        assert_eq!(t.send(&frame(3)), Err(SendError::WouldBlock));
        assert_eq!(t.stats().would_block, 2, "stalls are counted");
        // Draining one slot unblocks exactly one send.
        assert!(matches!(t.try_recv(), Recv::Frame(_)));
        t.send(&frame(3)).expect("slot freed");
        assert_eq!(t.stats().sent, 4);
    }

    #[test]
    fn shm_ring_full_is_explicit_backpressure() {
        let t = ShmRing::new(2);
        t.send(&frame(0)).expect("fits");
        t.send(&frame(1)).expect("fits");
        assert_eq!(t.send(&frame(2)), Err(SendError::WouldBlock));
        assert_eq!(t.stats().would_block, 1);
        assert!(matches!(t.try_recv(), Recv::Frame(_)));
        t.send(&frame(2)).expect("slot freed");
        // Wraparound keeps order.
        assert_eq!(t.try_recv(), Recv::Frame(frame(1)));
        assert_eq!(t.try_recv(), Recv::Frame(frame(2)));
        assert_eq!(t.try_recv(), Recv::Empty);
    }

    #[test]
    fn stream_socket_full_is_explicit_backpressure() {
        let t = StreamSocket::new(2);
        t.send(&frame(0)).expect("fits");
        t.send(&frame(1)).expect("fits");
        assert_eq!(t.send(&frame(2)), Err(SendError::WouldBlock));
        assert_eq!(t.stats().would_block, 1);
        assert!(matches!(t.try_recv(), Recv::Frame(_)));
        t.send(&frame(2)).expect("bytes freed");
    }

    #[test]
    fn stream_socket_reassembles_across_tiny_chunks() {
        // 5-byte chunks: every frame straddles several reads.
        let t = StreamSocket::with_chunk(16, 5);
        for i in 0..4 {
            t.send(&frame(i)).expect("fits");
        }
        let mut got = Vec::new();
        loop {
            match t.try_recv() {
                Recv::Frame(f) => got.push(f),
                Recv::Empty => break,
                Recv::Corrupt => panic!("clean stream"),
            }
        }
        assert_eq!(got, (0..4).map(frame).collect::<Vec<_>>());
    }

    #[test]
    fn shm_corruption_is_detected_at_ingest() {
        let t = ShmRing::new(4);
        t.send(&frame(0)).expect("fits");
        t.send(&frame(1)).expect("fits");
        t.corrupt_oldest(13);
        assert_eq!(t.try_recv(), Recv::Corrupt, "flip caught by integrity word");
        assert_eq!(t.try_recv(), Recv::Frame(frame(1)), "later frames intact");
        assert_eq!(t.stats().corrupt, 1);
        assert_eq!(t.stats().received, 1);
    }

    #[test]
    fn ingest_roundtrip_reassembles_every_backend_byte_identically() {
        let logs: Vec<CommitLog> = (0..100).map(log).collect();
        for kind in Backend::ALL {
            let got = ingest_roundtrip(kind, &logs).expect("clean roundtrip");
            assert_eq!(got, logs, "{kind}");
            assert_eq!(
                titancfi::wire::stream_bytes(&got),
                titancfi::wire::stream_bytes(&logs),
                "{kind} byte-identical"
            );
        }
    }
}
