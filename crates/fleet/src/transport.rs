//! Multi-backend commit-log transports.
//!
//! Every backend carries the same 32-byte wire frame ([`titancfi::wire`]):
//! the 28-byte commit-log record plus the resilience layer's seq+checksum
//! integrity word. The monitor side decodes and *verifies* each frame at
//! ingest, so corruption anywhere between a device and the fleet service
//! is detected and counted rather than silently aggregated — the same
//! property the mailbox hardware enforces at doorbell-ring time, extended
//! to the fleet's long-haul links.
//!
//! Three backends model the deployment spectrum:
//!
//! * [`InProcRing`] — a bounded in-process ring of frames, the cheapest
//!   same-address-space channel (device thread → monitor thread). Since
//!   this is the fleet's hottest backend, it is a *lock-free* bounded SPSC
//!   ring: producer and consumer each own one monotonic cursor published
//!   with release stores and read with acquire loads, plus a cached copy
//!   of the opposite cursor so the steady state touches no shared line at
//!   all (see the module-level memory-ordering argument on [`InProcRing`]);
//! * [`ShmRing`] — a shared-memory-style ring: one flat byte region laid
//!   out exactly as an mmap'd segment would be (head/tail cursors stored
//!   little-endian *inside* the region, fixed 32-byte slots after them),
//!   so producer and consumer communicate only through serialized bytes;
//! * [`StreamSocket`] — a length-prefixed byte stream over a bounded
//!   duplex pipe, chunked on the receive side to model TCP-style partial
//!   delivery; frames are reassembled from arbitrary chunk boundaries.
//!
//! Backpressure is explicit everywhere: a full backend returns
//! [`SendError::WouldBlock`] and counts the stall — no backend ever spins,
//! drops, or silently grows.
//!
//! ## Batched operation
//!
//! The fleet's ingest loop moves frames in *bursts*: one
//! [`Transport::send_many`] / [`Transport::try_recv_many`] call amortizes
//! one synchronization episode (one lock acquisition on the mutex-based
//! backends, one cursor publish on the lock-free ring) over a whole batch
//! of frames, instead of paying it per frame. The batched entry points are
//! semantically identical to frame-at-a-time loops — same ordering, same
//! accounting, same backpressure (a partial `send_many` counts exactly one
//! stall, like the single `WouldBlock` the per-frame loop would have hit) —
//! which the property tests below pin on every backend.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use titancfi::wire::{Frame, FRAME_BYTES};

/// The backend kinds, in round-robin assignment order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Bounded lock-free in-process ring buffer of frames.
    InProcRing,
    /// Shared-memory-style byte ring (cursors live inside the region).
    ShmRing,
    /// Length-prefixed byte stream with chunked delivery.
    StreamSocket,
}

impl Backend {
    /// Every backend, in assignment order.
    pub const ALL: [Backend; 3] = [Backend::InProcRing, Backend::ShmRing, Backend::StreamSocket];

    /// Stable kebab-case name (metric keys, reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::InProcRing => "inproc-ring",
            Backend::ShmRing => "shm-ring",
            Backend::StreamSocket => "stream-socket",
        }
    }

    /// Builds a transport of this kind with room for `capacity` frames.
    #[must_use]
    pub fn build(self, capacity: usize) -> Box<dyn Transport> {
        match self {
            Backend::InProcRing => Box::new(InProcRing::new(capacity)),
            Backend::ShmRing => Box::new(ShmRing::new(capacity)),
            Backend::StreamSocket => Box::new(StreamSocket::new(capacity)),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a send did not happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The backend is full; retry after the monitor drains it. Counted in
    /// [`TransportStats::would_block`].
    WouldBlock,
}

/// One receive attempt's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recv {
    /// Nothing available right now.
    Empty,
    /// A verified frame.
    Frame(Frame),
    /// A frame arrived but failed integrity verification; counted in
    /// [`TransportStats::corrupt`].
    Corrupt,
}

/// Outcome of one [`Transport::try_recv_many`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecvBatch {
    /// Verified frames written to the caller's buffer, in wire order.
    pub received: usize,
    /// Frames consumed from the backend but rejected by the integrity
    /// word (also counted in [`TransportStats::corrupt`]).
    pub corrupt: usize,
}

impl RecvBatch {
    /// Total frames removed from the backend by the call — the ingest
    /// loop's progress measure (a corrupt frame is still progress).
    #[must_use]
    pub fn moved(&self) -> usize {
        self.received + self.corrupt
    }
}

/// Counters every backend keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames accepted by `send`.
    pub sent: u64,
    /// Frames handed out by `try_recv` (verified only).
    pub received: u64,
    /// Frames rejected at ingest by the integrity word.
    pub corrupt: u64,
    /// Send stalls: `WouldBlock` returns plus partial `send_many` batches
    /// (one stall per backpressured call, not per refused frame).
    pub would_block: u64,
}

/// A device→monitor commit-log channel. Implementations use interior
/// mutability: the device side calls [`Transport::send`], the monitor side
/// [`Transport::try_recv`], concurrently.
pub trait Transport: Send + Sync {
    /// Which backend this is.
    fn backend(&self) -> Backend;
    /// Enqueues one frame, or reports backpressure.
    ///
    /// # Errors
    ///
    /// [`SendError::WouldBlock`] when the backend is at capacity.
    fn send(&self, frame: &Frame) -> Result<(), SendError>;
    /// Dequeues and verifies one frame, if available.
    fn try_recv(&self) -> Recv;
    /// Counter snapshot.
    fn stats(&self) -> TransportStats;

    /// Enqueues a prefix of `frames`, amortizing one synchronization
    /// episode over the whole batch. Returns how many frames were
    /// accepted; a short count means the backend filled mid-batch, which
    /// counts exactly one stall in [`TransportStats::would_block`].
    ///
    /// Equivalent to calling [`Transport::send`] per frame until the first
    /// `WouldBlock` (same ordering, same acceptance), just cheaper.
    fn send_many(&self, frames: &[Frame]) -> usize {
        for (i, frame) in frames.iter().enumerate() {
            if self.send(frame).is_err() {
                return i;
            }
        }
        frames.len()
    }

    /// Dequeues and verifies up to `out.len()` frames in one
    /// synchronization episode. Verified frames land in `out[..received]`
    /// in wire order; corrupt frames are consumed, counted, and skipped.
    ///
    /// Equivalent to calling [`Transport::try_recv`] in a loop (same
    /// ordering, same accounting), just cheaper.
    fn try_recv_many(&self, out: &mut [Frame]) -> RecvBatch {
        let mut batch = RecvBatch::default();
        while batch.received < out.len() {
            match self.try_recv() {
                Recv::Frame(frame) => {
                    out[batch.received] = frame;
                    batch.received += 1;
                }
                Recv::Corrupt => batch.corrupt += 1,
                Recv::Empty => break,
            }
        }
        batch
    }
}

/// Shared counter plumbing for the three backends.
#[derive(Debug, Default)]
struct Counters {
    sent: AtomicU64,
    received: AtomicU64,
    corrupt: AtomicU64,
    would_block: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            sent: self.sent.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            would_block: self.would_block.load(Ordering::Relaxed),
        }
    }

    /// Classifies decoded bytes, bumping the matching counter.
    fn classify(&self, bytes: &[u8]) -> Recv {
        match Frame::decode(bytes) {
            Ok(frame) => {
                self.received.fetch_add(1, Ordering::Relaxed);
                Recv::Frame(frame)
            }
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                Recv::Corrupt
            }
        }
    }
}

// ---- backend 1: lock-free in-process ring ----

/// A cache-line-sized box so the producer cursor, consumer cursor, and
/// their cached copies never share a line (false sharing would put the
/// "lock-free" ring right back on the coherence bus every frame).
#[repr(align(64))]
#[derive(Debug, Default)]
struct CacheLine<T>(T);

/// Exclusive-side gate: the SPSC protocol is only sound with one producer
/// and one consumer at a time, but [`Transport`] is an `Arc`-shared `&self`
/// API that cannot enforce that statically. Each side therefore claims a
/// one-word gate around its critical section. In the intended SPSC use the
/// gate is always uncontended — one relaxed-failure CAS and one release
/// store, never a shared line with the *other* side — and under accidental
/// same-side concurrency it degrades to a spin, preserving soundness
/// instead of corrupting cursors.
#[derive(Debug, Default)]
struct Gate(AtomicBool);

struct GateGuard<'a>(&'a AtomicBool);

impl Gate {
    fn claim(&self) -> GateGuard<'_> {
        while self
            .0
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        GateGuard(&self.0)
    }
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Bounded lock-free SPSC ring of encoded frames — the fleet's hottest
/// backend takes **zero locks per frame**.
///
/// ## Memory-ordering argument
///
/// Cursors are monotonic (never masked); `tail` is written only by the
/// producer, `head` only by the consumer.
///
/// * **Publish:** the producer writes the slot bytes, *then* stores
///   `tail + n` with `Release`. The consumer loads `tail` with `Acquire`
///   before reading any slot, so the release/acquire pair orders the slot
///   writes before the consumer's reads (no torn or stale frames).
/// * **Reclaim:** the consumer copies the slot out, *then* stores
///   `head + n` with `Release`. The producer loads `head` with `Acquire`
///   before overwriting a slot, so a slot is never rewritten while the
///   consumer may still read it.
/// * **Cached cursors:** each side keeps a relaxed-only copy of the other
///   side's cursor (`head_cache` written by the producer, `tail_cache` by
///   the consumer) and re-reads the shared cursor only when the cache says
///   full/empty. A steady-state send or recv therefore touches *only*
///   lines owned by its own side — the same discipline that lets
///   `harness::steal` keep the common case uncontended, taken all the way
///   to zero locks.
///
/// Batched sends/receives run the same protocol once per batch: n slot
/// copies, one cursor publish.
#[derive(Debug)]
pub struct InProcRing {
    /// Frame slots; `slots.len()` is a power of two ≥ `capacity`.
    slots: Box<[UnsafeCell<[u8; FRAME_BYTES]>]>,
    /// Logical capacity (occupancy never exceeds this).
    capacity: usize,
    /// `slots.len() - 1`, for cheap index masking.
    mask: usize,
    /// Consumer cursor: next slot index to read (monotonic).
    head: CacheLine<AtomicUsize>,
    /// Producer cursor: next slot index to write (monotonic).
    tail: CacheLine<AtomicUsize>,
    /// Producer-owned cache of `head` (relaxed; refreshed on apparent full).
    head_cache: CacheLine<AtomicUsize>,
    /// Consumer-owned cache of `tail` (relaxed; refreshed on apparent empty).
    tail_cache: CacheLine<AtomicUsize>,
    producer_gate: Gate,
    consumer_gate: Gate,
    counters: Counters,
}

// SAFETY: the `UnsafeCell` slots are only accessed under the SPSC
// publish/reclaim protocol documented above (release/acquire cursor
// handoff), with each side serialized by its gate; no slot is ever read
// and written concurrently.
unsafe impl Send for InProcRing {}
unsafe impl Sync for InProcRing {}

impl InProcRing {
    /// A ring holding at most `capacity` frames (clamped to at least one).
    #[must_use]
    pub fn new(capacity: usize) -> InProcRing {
        let capacity = capacity.max(1);
        let slots = (0..capacity.next_power_of_two())
            .map(|_| UnsafeCell::new([0u8; FRAME_BYTES]))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let mask = slots.len() - 1;
        InProcRing {
            slots,
            capacity,
            mask,
            head: CacheLine(AtomicUsize::new(0)),
            tail: CacheLine(AtomicUsize::new(0)),
            head_cache: CacheLine(AtomicUsize::new(0)),
            tail_cache: CacheLine(AtomicUsize::new(0)),
            producer_gate: Gate::default(),
            consumer_gate: Gate::default(),
            counters: Counters::default(),
        }
    }

    /// Producer-side free-slot count, refreshing the cached head only when
    /// the cache cannot satisfy `wanted` slots. Call with the producer gate
    /// held.
    fn free_slots(&self, tail: usize, wanted: usize) -> usize {
        let mut head = self.head_cache.0.load(Ordering::Relaxed);
        if self.capacity - (tail - head) < wanted {
            head = self.head.0.load(Ordering::Acquire);
            self.head_cache.0.store(head, Ordering::Relaxed);
        }
        self.capacity - (tail - head)
    }

    /// Consumer-side occupied-slot count, refreshing the cached tail only
    /// when the cache holds fewer than `wanted` frames. Call with the
    /// consumer gate held.
    fn occupied_slots(&self, head: usize, wanted: usize) -> usize {
        let mut tail = self.tail_cache.0.load(Ordering::Relaxed);
        if tail - head < wanted {
            tail = self.tail.0.load(Ordering::Acquire);
            self.tail_cache.0.store(tail, Ordering::Relaxed);
        }
        tail - head
    }
}

impl Transport for InProcRing {
    fn backend(&self) -> Backend {
        Backend::InProcRing
    }

    fn send(&self, frame: &Frame) -> Result<(), SendError> {
        match self.send_many(std::slice::from_ref(frame)) {
            1 => Ok(()),
            _ => Err(SendError::WouldBlock),
        }
    }

    fn try_recv(&self) -> Recv {
        let mut out = [Frame {
            seq: 0,
            log: titancfi::CommitLog::default(),
        }];
        let batch = self.try_recv_many(&mut out);
        if batch.corrupt > 0 {
            Recv::Corrupt
        } else if batch.received > 0 {
            Recv::Frame(out[0])
        } else {
            Recv::Empty
        }
    }

    fn send_many(&self, frames: &[Frame]) -> usize {
        if frames.is_empty() {
            return 0;
        }
        let _gate = self.producer_gate.claim();
        let tail = self.tail.0.load(Ordering::Relaxed); // producer-owned
        let n = self.free_slots(tail, frames.len()).min(frames.len());
        for (i, frame) in frames[..n].iter().enumerate() {
            let slot = (tail + i) & self.mask;
            // SAFETY: slots [tail, tail + n) are unoccupied (free_slots
            // proved head has moved past them, with Acquire), and only
            // this producer — serialized by the gate — writes slots.
            unsafe { *self.slots[slot].get() = frame.encode() };
        }
        // Publish: slot writes above happen-before any consumer that
        // acquires this new tail.
        self.tail.0.store(tail + n, Ordering::Release);
        self.counters.sent.fetch_add(n as u64, Ordering::Relaxed);
        if n < frames.len() {
            self.counters.would_block.fetch_add(1, Ordering::Relaxed);
        }
        n
    }

    fn try_recv_many(&self, out: &mut [Frame]) -> RecvBatch {
        if out.is_empty() {
            return RecvBatch::default();
        }
        let _gate = self.consumer_gate.claim();
        let head = self.head.0.load(Ordering::Relaxed); // consumer-owned
        let n = self.occupied_slots(head, out.len()).min(out.len());
        let mut batch = RecvBatch::default();
        for i in 0..n {
            let slot = (head + i) & self.mask;
            // SAFETY: slots [head, head + n) were published by a Release
            // store of tail that occupied_slots Acquired; the producer
            // will not rewrite them until head moves past.
            let bytes = unsafe { *self.slots[slot].get() };
            match self.counters.classify(&bytes) {
                Recv::Frame(frame) => {
                    out[batch.received] = frame;
                    batch.received += 1;
                }
                _ => batch.corrupt += 1,
            }
        }
        // Reclaim: the copies above happen-before the producer reuses the
        // slots.
        self.head.0.store(head + n, Ordering::Release);
        batch
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

// ---- backend 2: shared-memory-style byte ring ----

/// Byte offsets of the ring's header fields within the region — the layout
/// a real mmap'd segment would carry.
const SHM_HEAD: usize = 0; // next slot to read (monotonic u64, LE)
const SHM_TAIL: usize = 8; // next slot to write (monotonic u64, LE)
const SHM_SLOTS: usize = 16; // fixed 32-byte slots from here

/// Shared-memory-style ring: producer and consumer touch nothing but one
/// flat byte region, cursors included, exactly as two processes sharing an
/// mmap would. The mutex stands in for the memory system's coherence; all
/// *information* crosses as little-endian bytes. Batched sends/receives
/// take the region lock once per burst.
#[derive(Debug)]
pub struct ShmRing {
    region: Mutex<Vec<u8>>,
    capacity: usize,
    counters: Counters,
}

impl ShmRing {
    /// A region with `capacity` frame slots (clamped to at least one).
    #[must_use]
    pub fn new(capacity: usize) -> ShmRing {
        let capacity = capacity.max(1);
        ShmRing {
            region: Mutex::new(vec![0u8; SHM_SLOTS + capacity * FRAME_BYTES]),
            capacity,
            counters: Counters::default(),
        }
    }

    fn cursor(region: &[u8], at: usize) -> u64 {
        u64::from_le_bytes(region[at..at + 8].try_into().expect("8-byte cursor"))
    }

    fn set_cursor(region: &mut [u8], at: usize, value: u64) {
        region[at..at + 8].copy_from_slice(&value.to_le_bytes());
    }

    fn slot_range(&self, index: u64) -> std::ops::Range<usize> {
        let slot = (index % self.capacity as u64) as usize;
        let start = SHM_SLOTS + slot * FRAME_BYTES;
        start..start + FRAME_BYTES
    }

    /// Test/fuzz hook: flips one bit inside the oldest queued frame,
    /// modelling in-flight shared-memory corruption.
    pub fn corrupt_oldest(&self, bit: u32) {
        let mut region = self
            .region
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let head = Self::cursor(&region, SHM_HEAD);
        let tail = Self::cursor(&region, SHM_TAIL);
        if head == tail {
            return; // empty
        }
        let range = self.slot_range(head);
        let byte = range.start + (bit as usize / 8) % FRAME_BYTES;
        region[byte] ^= 1 << (bit % 8);
    }
}

impl Transport for ShmRing {
    fn backend(&self) -> Backend {
        Backend::ShmRing
    }

    fn send(&self, frame: &Frame) -> Result<(), SendError> {
        match self.send_many(std::slice::from_ref(frame)) {
            1 => Ok(()),
            _ => Err(SendError::WouldBlock),
        }
    }

    fn try_recv(&self) -> Recv {
        let bytes = {
            let mut region = self
                .region
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let head = Self::cursor(&region, SHM_HEAD);
            let tail = Self::cursor(&region, SHM_TAIL);
            if head == tail {
                return Recv::Empty;
            }
            let range = self.slot_range(head);
            let mut bytes = [0u8; FRAME_BYTES];
            bytes.copy_from_slice(&region[range]);
            Self::set_cursor(&mut region, SHM_HEAD, head + 1);
            bytes
        };
        self.counters.classify(&bytes)
    }

    fn send_many(&self, frames: &[Frame]) -> usize {
        if frames.is_empty() {
            return 0;
        }
        let mut region = self
            .region
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let head = Self::cursor(&region, SHM_HEAD);
        let tail = Self::cursor(&region, SHM_TAIL);
        let free = self.capacity - (tail - head) as usize;
        let n = free.min(frames.len());
        for (i, frame) in frames[..n].iter().enumerate() {
            let range = self.slot_range(tail + i as u64);
            region[range].copy_from_slice(&frame.encode());
        }
        Self::set_cursor(&mut region, SHM_TAIL, tail + n as u64);
        drop(region);
        self.counters.sent.fetch_add(n as u64, Ordering::Relaxed);
        if n < frames.len() {
            self.counters.would_block.fetch_add(1, Ordering::Relaxed);
        }
        n
    }

    fn try_recv_many(&self, out: &mut [Frame]) -> RecvBatch {
        if out.is_empty() {
            return RecvBatch::default();
        }
        let mut staged = [[0u8; FRAME_BYTES]; RECV_BURST];
        let n = {
            let mut region = self
                .region
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let head = Self::cursor(&region, SHM_HEAD);
            let tail = Self::cursor(&region, SHM_TAIL);
            let n = ((tail - head) as usize).min(out.len()).min(RECV_BURST);
            for (i, slot) in staged[..n].iter_mut().enumerate() {
                slot.copy_from_slice(&region[self.slot_range(head + i as u64)]);
            }
            Self::set_cursor(&mut region, SHM_HEAD, head + n as u64);
            n
        };
        let mut batch = RecvBatch::default();
        for bytes in &staged[..n] {
            match self.counters.classify(bytes) {
                Recv::Frame(frame) => {
                    out[batch.received] = frame;
                    batch.received += 1;
                }
                _ => batch.corrupt += 1,
            }
        }
        batch
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

/// Upper bound on frames staged on the stack per batched receive; callers
/// with bigger buffers simply call again (the service's ingest loop drains
/// until a short batch anyway).
const RECV_BURST: usize = 64;

// ---- backend 3: length-prefixed byte stream ----

/// Length prefix size: a little-endian `u32` frame length.
const LEN_PREFIX: usize = 4;

#[derive(Debug)]
struct StreamInner {
    /// In-flight bytes, producer → consumer.
    pipe: VecDeque<u8>,
    /// Consumer-side reassembly buffer (bytes taken off the pipe but not
    /// yet forming a whole frame).
    reassembly: Vec<u8>,
}

impl StreamInner {
    /// Pulls at most one `chunk` of pipe bytes per iteration into the
    /// reassembly buffer until a whole frame is available or the pipe runs
    /// dry. Returns the frame's payload bytes.
    fn next_frame(&mut self, chunk: usize) -> Option<Vec<u8>> {
        loop {
            if self.reassembly.len() >= LEN_PREFIX {
                let len =
                    u32::from_le_bytes(self.reassembly[..LEN_PREFIX].try_into().expect("prefix"))
                        as usize;
                if self.reassembly.len() >= LEN_PREFIX + len {
                    let frame: Vec<u8> = self
                        .reassembly
                        .drain(..LEN_PREFIX + len)
                        .skip(LEN_PREFIX)
                        .collect();
                    return Some(frame);
                }
            }
            if self.pipe.is_empty() {
                return None;
            }
            let take = chunk.min(self.pipe.len());
            let moved: Vec<u8> = self.pipe.drain(..take).collect();
            self.reassembly.extend_from_slice(&moved);
        }
    }
}

/// Length-prefixed byte-stream backend over a bounded duplex pipe. The
/// receive side pulls at most `chunk` bytes per call before re-parsing, so
/// frames routinely straddle read boundaries — the codec reassembles them,
/// as a real socket consumer must. Batched sends/receives hold the pipe
/// lock once per burst (one writev/readv, in socket terms).
#[derive(Debug)]
pub struct StreamSocket {
    inner: Mutex<StreamInner>,
    /// Pipe capacity in bytes.
    capacity_bytes: usize,
    /// Max bytes moved pipe→reassembly per parse iteration.
    chunk: usize,
    counters: Counters,
}

impl StreamSocket {
    /// A stream able to buffer `capacity` frames' worth of bytes, with a
    /// default receive chunk that forces partial-frame reassembly.
    #[must_use]
    pub fn new(capacity: usize) -> StreamSocket {
        StreamSocket::with_chunk(capacity, FRAME_BYTES + LEN_PREFIX / 2)
    }

    /// Full control over the receive chunk size (bytes per parse step).
    #[must_use]
    pub fn with_chunk(capacity: usize, chunk: usize) -> StreamSocket {
        StreamSocket {
            inner: Mutex::new(StreamInner {
                pipe: VecDeque::new(),
                reassembly: Vec::new(),
            }),
            capacity_bytes: capacity.max(1) * (FRAME_BYTES + LEN_PREFIX),
            chunk: chunk.max(1),
            counters: Counters::default(),
        }
    }
}

impl Transport for StreamSocket {
    fn backend(&self) -> Backend {
        Backend::StreamSocket
    }

    fn send(&self, frame: &Frame) -> Result<(), SendError> {
        match self.send_many(std::slice::from_ref(frame)) {
            1 => Ok(()),
            _ => Err(SendError::WouldBlock),
        }
    }

    fn try_recv(&self) -> Recv {
        let bytes = {
            let mut inner = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match inner.next_frame(self.chunk) {
                Some(bytes) => bytes,
                None => return Recv::Empty,
            }
        };
        self.counters.classify(&bytes)
    }

    fn send_many(&self, frames: &[Frame]) -> usize {
        if frames.is_empty() {
            return 0;
        }
        let mut sent = 0;
        {
            let mut inner = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for frame in frames {
                if inner.pipe.len() + LEN_PREFIX + FRAME_BYTES > self.capacity_bytes {
                    break;
                }
                inner
                    .pipe
                    .extend((FRAME_BYTES as u32).to_le_bytes().iter().copied());
                inner.pipe.extend(frame.encode().iter().copied());
                sent += 1;
            }
        }
        self.counters.sent.fetch_add(sent as u64, Ordering::Relaxed);
        if sent < frames.len() {
            self.counters.would_block.fetch_add(1, Ordering::Relaxed);
        }
        sent
    }

    fn try_recv_many(&self, out: &mut [Frame]) -> RecvBatch {
        if out.is_empty() {
            return RecvBatch::default();
        }
        let mut staged: Vec<Vec<u8>> = Vec::new();
        {
            let mut inner = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while staged.len() < out.len().min(RECV_BURST) {
                match inner.next_frame(self.chunk) {
                    Some(bytes) => staged.push(bytes),
                    None => break,
                }
            }
        }
        let mut batch = RecvBatch::default();
        for bytes in &staged {
            match self.counters.classify(bytes) {
                Recv::Frame(frame) => {
                    out[batch.received] = frame;
                    batch.received += 1;
                }
                _ => batch.corrupt += 1,
            }
        }
        batch
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

/// Routes a commit-log stream through a fresh transport of `kind` and
/// returns the reassembled logs — the fuzz oracle's "fleet ingest" cell.
/// The transport is sized *smaller* than the stream so the pump exercises
/// real backpressure (send until `WouldBlock`, drain, repeat).
///
/// # Errors
///
/// Reports corrupt frames, out-of-order sequence numbers, or a stuck pump
/// as a human-readable string.
pub fn ingest_roundtrip(
    kind: Backend,
    logs: &[titancfi::CommitLog],
) -> Result<Vec<titancfi::CommitLog>, String> {
    let transport = kind.build(8);
    let mut tracker = titancfi::wire::SeqTracker::new();
    let mut out = Vec::with_capacity(logs.len());
    let mut next = 0usize;
    let mut seq: u16 = 0;
    while out.len() < logs.len() {
        let mut progressed = false;
        while next < logs.len() {
            seq = seq.wrapping_add(1);
            let frame = Frame {
                seq,
                log: logs[next],
            };
            match transport.send(&frame) {
                Ok(()) => {
                    next += 1;
                    progressed = true;
                }
                Err(SendError::WouldBlock) => {
                    seq = seq.wrapping_sub(1);
                    break;
                }
            }
        }
        loop {
            match transport.try_recv() {
                Recv::Frame(frame) => {
                    if !tracker.observe(frame.seq) {
                        return Err(format!(
                            "{kind}: out-of-order frame (seq {}, dups {}, gaps {})",
                            frame.seq, tracker.duplicates, tracker.gaps
                        ));
                    }
                    out.push(frame.log);
                    progressed = true;
                }
                Recv::Corrupt => return Err(format!("{kind}: corrupt frame at ingest")),
                Recv::Empty => break,
            }
        }
        if !progressed {
            return Err(format!(
                "{kind}: pump stuck at {}/{} logs",
                out.len(),
                logs.len()
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use titancfi::wire::SeqTracker;
    use titancfi::CommitLog;
    use titancfi_harness::prng::Xoshiro256;

    fn log(i: u64) -> CommitLog {
        CommitLog {
            pc: 0x8000_0000 + i * 4,
            insn: 0x0000_8067,
            next: 0x8000_0004 + i * 4,
            target: 0x9000_0000 + i * 8,
        }
    }

    fn frame(i: u64) -> Frame {
        Frame {
            seq: (i as u16).wrapping_add(1),
            log: log(i),
        }
    }

    fn zero_frame() -> Frame {
        Frame {
            seq: 0,
            log: CommitLog::default(),
        }
    }

    fn roundtrip(t: &dyn Transport) {
        for i in 0..5 {
            t.send(&frame(i)).expect("fits");
        }
        for i in 0..5 {
            assert_eq!(t.try_recv(), Recv::Frame(frame(i)), "{} order", t.backend());
        }
        assert_eq!(t.try_recv(), Recv::Empty);
        let s = t.stats();
        assert_eq!((s.sent, s.received, s.corrupt), (5, 5, 0));
    }

    #[test]
    fn all_backends_roundtrip_in_order() {
        for kind in Backend::ALL {
            roundtrip(kind.build(8).as_ref());
        }
    }

    #[test]
    fn inproc_ring_full_is_explicit_backpressure() {
        let t = InProcRing::new(3);
        for i in 0..3 {
            t.send(&frame(i)).expect("fits");
        }
        assert_eq!(t.send(&frame(3)), Err(SendError::WouldBlock));
        assert_eq!(t.send(&frame(3)), Err(SendError::WouldBlock));
        assert_eq!(t.stats().would_block, 2, "stalls are counted");
        // Draining one slot unblocks exactly one send.
        assert!(matches!(t.try_recv(), Recv::Frame(_)));
        t.send(&frame(3)).expect("slot freed");
        assert_eq!(t.stats().sent, 4);
    }

    #[test]
    fn inproc_ring_wraps_many_times_without_reordering() {
        // A capacity that is not a power of two, cycled enough times to
        // wrap both cursors repeatedly.
        let t = InProcRing::new(3);
        let mut sent = 0u64;
        let mut got = 0u64;
        while got < 1000 {
            while t.send(&frame(sent)).is_ok() {
                sent += 1;
            }
            loop {
                match t.try_recv() {
                    Recv::Frame(f) => {
                        assert_eq!(f, frame(got), "wire order across wraps");
                        got += 1;
                    }
                    Recv::Empty => break,
                    Recv::Corrupt => panic!("clean ring"),
                }
            }
        }
        let s = t.stats();
        assert_eq!(s.received, s.sent, "fully drained after the last cycle");
        assert!(s.received >= 1000);
    }

    #[test]
    fn inproc_ring_is_lossless_under_concurrent_producer_consumer() {
        // The SPSC protocol's real test: one producer thread, one consumer
        // thread, a tiny ring, every frame delivered exactly once in order.
        const FRAMES: u64 = 20_000;
        let t = InProcRing::new(4);
        std::thread::scope(|scope| {
            let t = &t;
            scope.spawn(move || {
                let mut i = 0u64;
                while i < FRAMES {
                    if t.send(&frame(i)).is_ok() {
                        i += 1;
                    } else {
                        // On a single-core host the consumer needs the
                        // time slice to free space; spinning would burn it.
                        std::thread::yield_now();
                    }
                }
            });
            let mut tracker = SeqTracker::new();
            let mut got = 0u64;
            let mut buf = [zero_frame(); 8];
            while got < FRAMES {
                let batch = t.try_recv_many(&mut buf);
                assert_eq!(batch.corrupt, 0);
                for f in &buf[..batch.received] {
                    assert_eq!(*f, frame(got), "exact wire order under concurrency");
                    assert!(tracker.observe(f.seq));
                    got += 1;
                }
                if batch.received == 0 {
                    std::thread::yield_now();
                }
            }
            assert_eq!((tracker.duplicates, tracker.gaps), (0, 0));
        });
        let s = t.stats();
        assert_eq!((s.sent, s.received, s.corrupt), (FRAMES, FRAMES, 0));
    }

    #[test]
    fn shm_ring_full_is_explicit_backpressure() {
        let t = ShmRing::new(2);
        t.send(&frame(0)).expect("fits");
        t.send(&frame(1)).expect("fits");
        assert_eq!(t.send(&frame(2)), Err(SendError::WouldBlock));
        assert_eq!(t.stats().would_block, 1);
        assert!(matches!(t.try_recv(), Recv::Frame(_)));
        t.send(&frame(2)).expect("slot freed");
        // Wraparound keeps order.
        assert_eq!(t.try_recv(), Recv::Frame(frame(1)));
        assert_eq!(t.try_recv(), Recv::Frame(frame(2)));
        assert_eq!(t.try_recv(), Recv::Empty);
    }

    #[test]
    fn stream_socket_full_is_explicit_backpressure() {
        let t = StreamSocket::new(2);
        t.send(&frame(0)).expect("fits");
        t.send(&frame(1)).expect("fits");
        assert_eq!(t.send(&frame(2)), Err(SendError::WouldBlock));
        assert_eq!(t.stats().would_block, 1);
        assert!(matches!(t.try_recv(), Recv::Frame(_)));
        t.send(&frame(2)).expect("bytes freed");
    }

    #[test]
    fn stream_socket_reassembles_across_tiny_chunks() {
        // 5-byte chunks: every frame straddles several reads.
        let t = StreamSocket::with_chunk(16, 5);
        for i in 0..4 {
            t.send(&frame(i)).expect("fits");
        }
        let mut got = Vec::new();
        loop {
            match t.try_recv() {
                Recv::Frame(f) => got.push(f),
                Recv::Empty => break,
                Recv::Corrupt => panic!("clean stream"),
            }
        }
        assert_eq!(got, (0..4).map(frame).collect::<Vec<_>>());
    }

    #[test]
    fn shm_corruption_is_detected_at_ingest() {
        let t = ShmRing::new(4);
        t.send(&frame(0)).expect("fits");
        t.send(&frame(1)).expect("fits");
        t.corrupt_oldest(13);
        assert_eq!(t.try_recv(), Recv::Corrupt, "flip caught by integrity word");
        assert_eq!(t.try_recv(), Recv::Frame(frame(1)), "later frames intact");
        assert_eq!(t.stats().corrupt, 1);
        assert_eq!(t.stats().received, 1);
    }

    #[test]
    fn shm_corruption_is_skipped_and_counted_by_batched_recv() {
        let t = ShmRing::new(4);
        for i in 0..3 {
            t.send(&frame(i)).expect("fits");
        }
        t.corrupt_oldest(21);
        let mut buf = [zero_frame(); 4];
        let batch = t.try_recv_many(&mut buf);
        assert_eq!(
            batch,
            RecvBatch {
                received: 2,
                corrupt: 1
            }
        );
        assert_eq!(batch.moved(), 3, "corrupt frames still count as progress");
        assert_eq!(&buf[..2], &[frame(1), frame(2)], "good frames keep order");
        assert_eq!(t.stats().corrupt, 1);
    }

    #[test]
    fn send_many_accepts_exactly_the_free_space_and_counts_one_stall() {
        for kind in Backend::ALL {
            let t = kind.build(4);
            let frames: Vec<Frame> = (0..7).map(frame).collect();
            assert_eq!(t.send_many(&frames), 4, "{kind}: prefix fills capacity");
            assert_eq!(
                t.stats().would_block,
                1,
                "{kind}: one partial batch = one stall"
            );
            assert_eq!(t.send_many(&frames[4..]), 0, "{kind}: still full");
            assert_eq!(t.stats().would_block, 2, "{kind}");
            let mut buf = [zero_frame(); 8];
            let batch = t.try_recv_many(&mut buf);
            assert_eq!(
                batch,
                RecvBatch {
                    received: 4,
                    corrupt: 0
                },
                "{kind}"
            );
            assert_eq!(&buf[..4], &frames[..4], "{kind}: order preserved");
            // Freed space accepts the rest of the batch.
            assert_eq!(t.send_many(&frames[4..]), 3, "{kind}");
        }
    }

    #[test]
    fn partial_batch_drain_returns_short_counts_at_shutdown() {
        // The drain path asks for more than is buffered: the batch comes
        // back short rather than blocking, and a second call reports empty.
        for kind in Backend::ALL {
            let t = kind.build(16);
            for i in 0..5 {
                t.send(&frame(i)).expect("fits");
            }
            let mut buf = [zero_frame(); 16];
            let batch = t.try_recv_many(&mut buf);
            assert_eq!(
                batch,
                RecvBatch {
                    received: 5,
                    corrupt: 0
                },
                "{kind}"
            );
            assert_eq!(&buf[..5], &(0..5).map(frame).collect::<Vec<_>>()[..]);
            assert_eq!(
                t.try_recv_many(&mut buf),
                RecvBatch::default(),
                "{kind}: drained"
            );
            assert_eq!(t.try_recv(), Recv::Empty, "{kind}");
        }
    }

    #[test]
    fn batched_and_single_frame_ingest_account_identically() {
        // Property: for a random interleave of sends and receives, batched
        // ingest produces the same frames in the same order — and the same
        // SeqTracker accounting — as a frame-at-a-time loop, on every
        // backend.
        for kind in Backend::ALL {
            for seed in 0..8u64 {
                let mut rng = Xoshiro256::new(0xF1EE7 ^ seed);
                let batched = kind.build(8);
                let single = kind.build(8);
                let mut batched_tracker = SeqTracker::new();
                let mut single_tracker = SeqTracker::new();
                let mut batched_out: Vec<Frame> = Vec::new();
                let mut single_out: Vec<Frame> = Vec::new();
                let mut next_send = 0u64;
                let mut pending: Vec<Frame> = Vec::new();
                for _ in 0..200 {
                    if rng.below(2) == 0 {
                        // Send a burst of 0..=6 fresh frames to both.
                        let burst = rng.below(7) as usize;
                        pending.clear();
                        for _ in 0..burst {
                            pending.push(frame(next_send));
                            next_send += 1;
                        }
                        let accepted = batched.send_many(&pending);
                        let mut single_accepted = 0;
                        for f in &pending {
                            if single.send(f).is_err() {
                                break;
                            }
                            single_accepted += 1;
                        }
                        assert_eq!(accepted, single_accepted, "{kind} seed {seed}");
                        // Frames refused by both paths are re-sent later:
                        // rewind the shared counter past the refused tail.
                        next_send -= (burst - accepted) as u64;
                    } else {
                        // Drain a burst of 1..=8 from both.
                        let want = 1 + rng.below(8) as usize;
                        let mut buf = vec![zero_frame(); want];
                        let batch = batched.try_recv_many(&mut buf);
                        assert_eq!(batch.corrupt, 0);
                        for f in &buf[..batch.received] {
                            assert!(batched_tracker.observe(f.seq));
                            batched_out.push(*f);
                        }
                        for _ in 0..want {
                            match single.try_recv() {
                                Recv::Frame(f) => {
                                    assert!(single_tracker.observe(f.seq));
                                    single_out.push(f);
                                }
                                Recv::Empty => break,
                                Recv::Corrupt => panic!("clean transport"),
                            }
                        }
                    }
                    assert_eq!(batched_out, single_out, "{kind} seed {seed}");
                }
                // Drain what's left and compare the final accounting.
                let mut buf = [zero_frame(); 16];
                loop {
                    let batch = batched.try_recv_many(&mut buf);
                    if batch.moved() == 0 {
                        break;
                    }
                    for f in &buf[..batch.received] {
                        assert!(batched_tracker.observe(f.seq));
                        batched_out.push(*f);
                    }
                }
                while let Recv::Frame(f) = single.try_recv() {
                    assert!(single_tracker.observe(f.seq));
                    single_out.push(f);
                }
                assert_eq!(batched_out, single_out, "{kind} seed {seed}");
                assert_eq!(
                    (batched_tracker.duplicates, batched_tracker.gaps),
                    (single_tracker.duplicates, single_tracker.gaps),
                    "{kind} seed {seed}: identical SeqTracker accounting"
                );
                let (b, s) = (batched.stats(), single.stats());
                assert_eq!(b.sent, s.sent, "{kind} seed {seed}");
                assert_eq!(b.received, s.received, "{kind} seed {seed}");
                assert_eq!(b.corrupt, s.corrupt, "{kind} seed {seed}");
            }
        }
    }

    #[test]
    fn ingest_roundtrip_reassembles_every_backend_byte_identically() {
        let logs: Vec<CommitLog> = (0..100).map(log).collect();
        for kind in Backend::ALL {
            let got = ingest_roundtrip(kind, &logs).expect("clean roundtrip");
            assert_eq!(got, logs, "{kind}");
            assert_eq!(
                titancfi::wire::stream_bytes(&got),
                titancfi::wire::stream_bytes(&logs),
                "{kind} byte-identical"
            );
        }
    }
}
