//! Fail-fast device supervision.
//!
//! Each fleet slot holds one live device. The supervisor polls it, health-
//! checks the outcome against a liveness deadline (consecutive idle polls —
//! the deterministic analog of a wall-clock heartbeat), and reacts the
//! fail-fast way: anything wedged or trapped is *escalated* — reaped
//! immediately and respawned fresh — rather than nursed along. Respawns
//! after a failure draw from a bounded restart budget; once a slot exhausts
//! it, the slot is parked permanently and the failure is recorded in the
//! ledger. Benign completions respawn for free: a fleet device's job is to
//! run forever, and a clean exit just means the next run boots.
//!
//! All slot state lives behind per-slot mutexes, so shard workers drive
//! disjoint slots in parallel and work-stealing needs no extra
//! coordination.

use crate::device::{Device, DeviceStatus, PollOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Factory producing a device for `(slot, start_seq)`. Called at fleet
/// start and at every respawn.
pub type DeviceFactory = Box<dyn Fn(u32, u16) -> Box<dyn Device> + Send + Sync>;

/// Supervision policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct SupervisionConfig {
    /// Consecutive zero-progress polls before a device counts as hung.
    pub liveness_polls: u32,
    /// Failure respawns allowed per slot before it is parked for good.
    pub restart_budget: u32,
}

impl Default for SupervisionConfig {
    fn default() -> SupervisionConfig {
        SupervisionConfig {
            liveness_polls: 50,
            restart_budget: 3,
        }
    }
}

/// Why a device was escalated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EscalationReason {
    /// Missed the liveness deadline (idle for `liveness_polls` polls).
    Hung,
    /// Reported [`DeviceStatus::Trapped`].
    Trapped(String),
}

impl std::fmt::Display for EscalationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EscalationReason::Hung => f.write_str("hung: missed liveness deadline"),
            EscalationReason::Trapped(why) => write!(f, "trapped: {why}"),
        }
    }
}

/// A permanent-failure ledger entry: a slot that exhausted its restart
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord {
    /// Which slot failed.
    pub slot: u32,
    /// Failure respawns consumed before parking.
    pub restarts_used: u32,
    /// The final escalation that parked the slot.
    pub reason: String,
}

/// What one supervision turn did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Turn {
    /// The device made (possibly zero) progress and stays live.
    Progress(PollOutcome),
    /// The run completed cleanly and a fresh run was booted (no budget
    /// consumed). Carries the completing poll.
    Recycled(PollOutcome),
    /// The device was escalated, reaped, and respawned from the restart
    /// budget.
    Respawned(EscalationReason),
    /// The device was escalated and the budget was exhausted: the slot is
    /// now parked and the ledger holds a [`FailureRecord`].
    Parked(EscalationReason),
    /// The slot was already parked; nothing to do.
    Dead,
}

struct Slot {
    device: Option<Box<dyn Device>>,
    idle_polls: u32,
    restarts_used: u32,
    completed_runs: u64,
    violations: u64,
    escalated_hung: u64,
    escalated_trapped: u64,
}

/// Per-slot health counters, snapshotted for the fleet health monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotHealth {
    /// Violations this slot's devices reported across all polls.
    pub violations: u64,
    /// Liveness-deadline escalations of this slot.
    pub escalated_hung: u64,
    /// Trap escalations of this slot.
    pub escalated_trapped: u64,
    /// Failure respawns consumed so far.
    pub restarts_used: u32,
    /// Clean run completions on this slot.
    pub completed_runs: u64,
    /// Whether the slot is permanently parked.
    pub parked: bool,
}

/// The per-slot supervision state machine over a fixed set of slots.
pub struct Supervisor {
    config: SupervisionConfig,
    factory: DeviceFactory,
    slots: Vec<Mutex<Slot>>,
    ledger: Mutex<Vec<FailureRecord>>,
    escalated_hung: AtomicU64,
    escalated_trapped: AtomicU64,
    respawns: AtomicU64,
    completed_runs: AtomicU64,
    violations: AtomicU64,
}

/// Aggregate supervision counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionStats {
    /// Devices escalated for missing the liveness deadline.
    pub escalated_hung: u64,
    /// Devices escalated for trapping.
    pub escalated_trapped: u64,
    /// Failure respawns performed (budget draws).
    pub respawns: u64,
    /// Clean guest-run completions (free recycles).
    pub completed_runs: u64,
    /// Slots parked permanently.
    pub permanent_failures: u64,
    /// Violations reported by devices across all polls.
    pub violations: u64,
}

impl Supervisor {
    /// Boots `slots` devices through `factory`.
    #[must_use]
    pub fn new(slots: u32, config: SupervisionConfig, factory: DeviceFactory) -> Supervisor {
        let slots = (0..slots)
            .map(|s| {
                Mutex::new(Slot {
                    device: Some(factory(s, 0)),
                    idle_polls: 0,
                    restarts_used: 0,
                    completed_runs: 0,
                    violations: 0,
                    escalated_hung: 0,
                    escalated_trapped: 0,
                })
            })
            .collect();
        Supervisor {
            config,
            factory,
            slots,
            ledger: Mutex::new(Vec::new()),
            escalated_hung: AtomicU64::new(0),
            escalated_trapped: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            completed_runs: AtomicU64::new(0),
            violations: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn slot_count(&self) -> u32 {
        self.slots.len() as u32
    }

    fn lock(&self, slot: u32) -> std::sync::MutexGuard<'_, Slot> {
        self.slots[slot as usize]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs one supervision turn on `slot`: poll, health-check, escalate /
    /// recycle / park as the outcome demands.
    pub fn turn(&self, slot: u32) -> Turn {
        let mut state = self.lock(slot);
        let outcome = match state.device.as_mut() {
            Some(device) => device.poll(),
            None => return Turn::Dead,
        };
        self.violations
            .fetch_add(outcome.violations, Ordering::Relaxed);
        state.violations += outcome.violations;
        match &outcome.status {
            DeviceStatus::Running => {
                if outcome.is_idle() {
                    state.idle_polls += 1;
                    if state.idle_polls >= self.config.liveness_polls {
                        return self.escalate(slot, &mut state, EscalationReason::Hung);
                    }
                } else {
                    state.idle_polls = 0;
                }
                Turn::Progress(outcome)
            }
            DeviceStatus::Completed => {
                state.completed_runs += 1;
                self.completed_runs.fetch_add(1, Ordering::Relaxed);
                // Free recycle: boot the next run, seq continuing where the
                // finished one stopped.
                let next_seq = state.device.as_ref().map_or(0, |d| d.last_seq());
                state.device = Some((self.factory)(slot, next_seq));
                state.idle_polls = 0;
                Turn::Recycled(outcome)
            }
            DeviceStatus::Trapped(why) => {
                let reason = EscalationReason::Trapped(why.clone());
                self.escalate(slot, &mut state, reason)
            }
        }
    }

    /// Reap + respawn-or-park. The escalated device is dropped on the spot
    /// (fail fast: no salvage of a compromised or wedged sim); its last
    /// assigned seq carries into the replacement so the monitor-side stream
    /// stays continuous.
    fn escalate(&self, slot: u32, state: &mut Slot, reason: EscalationReason) -> Turn {
        match reason {
            EscalationReason::Hung => {
                self.escalated_hung.fetch_add(1, Ordering::Relaxed);
                state.escalated_hung += 1;
            }
            EscalationReason::Trapped(_) => {
                self.escalated_trapped.fetch_add(1, Ordering::Relaxed);
                state.escalated_trapped += 1;
            }
        };
        let next_seq = state.device.as_ref().map_or(0, |d| d.last_seq());
        state.device = None; // reaped
        state.idle_polls = 0;
        if state.restarts_used < self.config.restart_budget {
            state.restarts_used += 1;
            self.respawns.fetch_add(1, Ordering::Relaxed);
            state.device = Some((self.factory)(slot, next_seq));
            Turn::Respawned(reason)
        } else {
            self.ledger
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(FailureRecord {
                    slot,
                    restarts_used: state.restarts_used,
                    reason: reason.to_string(),
                });
            Turn::Parked(reason)
        }
    }

    /// Flushes `slot`'s buffered frames without simulating further.
    /// Returns the frames still buffered afterwards (0 = drained, also 0
    /// for parked slots, which hold no device).
    pub fn flush(&self, slot: u32) -> usize {
        let mut state = self.lock(slot);
        state.device.as_mut().map_or(0, |d| d.flush())
    }

    /// Total frames sent by the *live* device in every slot (drained slots
    /// report their final device's counter; parked slots contribute 0 for
    /// the reaped run — the transport's own `sent` counter is the ground
    /// truth for loss accounting).
    #[must_use]
    pub fn live_frames_sent(&self) -> u64 {
        (0..self.slot_count())
            .map(|s| self.lock(s).device.as_ref().map_or(0, |d| d.frames_sent()))
            .sum()
    }

    /// Whether `slot` is parked (permanently failed).
    #[must_use]
    pub fn is_parked(&self, slot: u32) -> bool {
        self.lock(slot).device.is_none()
    }

    /// Snapshot of `slot`'s health counters for the fleet health monitor.
    #[must_use]
    pub fn slot_health(&self, slot: u32) -> SlotHealth {
        let state = self.lock(slot);
        SlotHealth {
            violations: state.violations,
            escalated_hung: state.escalated_hung,
            escalated_trapped: state.escalated_trapped,
            restarts_used: state.restarts_used,
            completed_runs: state.completed_runs,
            parked: state.device.is_none(),
        }
    }

    /// The end-to-end latency histogram of `slot`'s live device, when the
    /// device collects one ([`Device::latency_e2e`]).
    #[must_use]
    pub fn slot_latency_e2e(&self, slot: u32) -> Option<titancfi_obs::Histogram> {
        self.lock(slot)
            .device
            .as_ref()
            .and_then(|d| d.latency_e2e())
    }

    /// Snapshot of the permanent-failure ledger.
    #[must_use]
    pub fn ledger(&self) -> Vec<FailureRecord> {
        self.ledger
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> SupervisionStats {
        SupervisionStats {
            escalated_hung: self.escalated_hung.load(Ordering::Relaxed),
            escalated_trapped: self.escalated_trapped.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            completed_runs: self.completed_runs.load(Ordering::Relaxed),
            permanent_failures: self
                .ledger
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len() as u64,
            violations: self.violations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scripted device: a fixed tape of poll outcomes, then idles forever.
    struct Scripted {
        tape: std::vec::IntoIter<PollOutcome>,
        sent: u64,
    }

    impl Scripted {
        fn boxed(tape: Vec<PollOutcome>) -> Box<dyn Device> {
            Box::new(Scripted {
                tape: tape.into_iter(),
                sent: 0,
            })
        }
    }

    fn running(cycles: u64, frames: u64) -> PollOutcome {
        PollOutcome {
            cycles,
            frames,
            violations: 0,
            stalled: false,
            status: DeviceStatus::Running,
        }
    }

    impl Device for Scripted {
        fn poll(&mut self) -> PollOutcome {
            let out = self.tape.next().unwrap_or_else(|| running(0, 0));
            self.sent += out.frames;
            out
        }
        fn flush(&mut self) -> usize {
            0
        }
        fn last_seq(&self) -> u16 {
            self.sent as u16
        }
        fn frames_sent(&self) -> u64 {
            self.sent
        }
    }

    fn config(liveness: u32, budget: u32) -> SupervisionConfig {
        SupervisionConfig {
            liveness_polls: liveness,
            restart_budget: budget,
        }
    }

    #[test]
    fn hang_past_liveness_deadline_is_escalated() {
        // Device makes progress twice, then wedges silently.
        let sup = Supervisor::new(
            1,
            config(3, 1),
            Box::new(|_, _| Scripted::boxed(vec![running(10, 1), running(10, 1)])),
        );
        assert!(matches!(sup.turn(0), Turn::Progress(_)));
        assert!(matches!(sup.turn(0), Turn::Progress(_)));
        // Two idle polls tolerated, the third trips the deadline.
        assert!(matches!(sup.turn(0), Turn::Progress(_)));
        assert!(matches!(sup.turn(0), Turn::Progress(_)));
        assert_eq!(sup.turn(0), Turn::Respawned(EscalationReason::Hung));
        assert_eq!(sup.stats().escalated_hung, 1);
        assert_eq!(sup.stats().respawns, 1);
        // Progress on the respawn resets the idle count.
        assert!(matches!(sup.turn(0), Turn::Progress(_)));
    }

    #[test]
    fn exhausted_restart_budget_parks_the_slot_with_a_ledger_entry() {
        let trap = || PollOutcome {
            cycles: 5,
            frames: 0,
            violations: 0,
            stalled: false,
            status: DeviceStatus::Trapped("firmware trap: test".into()),
        };
        let sup = Supervisor::new(
            1,
            config(10, 2),
            Box::new(move |_, _| Scripted::boxed(vec![trap()])),
        );
        // Every boot traps on its first poll: 2 budgeted respawns, then park.
        assert!(matches!(sup.turn(0), Turn::Respawned(_)));
        assert!(matches!(sup.turn(0), Turn::Respawned(_)));
        assert!(matches!(sup.turn(0), Turn::Parked(_)));
        assert!(sup.is_parked(0));
        assert_eq!(sup.turn(0), Turn::Dead, "parked slots stay dead");
        let ledger = sup.ledger();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].slot, 0);
        assert_eq!(ledger[0].restarts_used, 2);
        assert!(ledger[0].reason.contains("firmware trap"));
        let stats = sup.stats();
        assert_eq!(stats.escalated_trapped, 3);
        assert_eq!(stats.respawns, 2);
        assert_eq!(stats.permanent_failures, 1);
    }

    #[test]
    fn clean_completion_recycles_without_spending_budget() {
        let done = || PollOutcome {
            cycles: 100,
            frames: 4,
            violations: 0,
            stalled: false,
            status: DeviceStatus::Completed,
        };
        let boots = std::sync::Arc::new(AtomicU64::new(0));
        let factory_boots = std::sync::Arc::clone(&boots);
        let sup = Supervisor::new(
            1,
            config(5, 0), // zero failure budget: any escalation would park
            Box::new(move |_, _| {
                factory_boots.fetch_add(1, Ordering::Relaxed);
                Scripted::boxed(vec![done()])
            }),
        );
        for _ in 0..5 {
            assert!(matches!(sup.turn(0), Turn::Recycled(_)));
        }
        assert!(!sup.is_parked(0), "free recycles never park");
        assert_eq!(sup.stats().completed_runs, 5);
        assert_eq!(sup.stats().respawns, 0);
        assert_eq!(
            boots.load(Ordering::Relaxed),
            6,
            "initial boot + 5 recycles"
        );
    }
}
