//! The fleet health pipeline: sliding-window per-device aggregation, a
//! 0–100 health score per slot, a severity-debounced alert engine, and
//! Prometheus-text / JSON exposition of the whole picture.
//!
//! Everything here is driven by *cumulative counters* sampled at the
//! ingest loop's snapshot cadence (one sample = one evaluation). The
//! monitor differences consecutive samples itself, keeps the last
//! [`HealthConfig::window`] deltas per device, and evaluates the alert
//! conditions over those window sums. Alert conditions are pure functions
//! of counter values — violations, sequence gaps, supervisor escalations,
//! parked slots, a merged latency percentile — never of wall-clock time or
//! sweep counts, so a clean fleet raises exactly zero alerts no matter how
//! the ingest loop's timing interleaves with the shard workers.
//!
//! Debounce semantics: a condition must hold for
//! [`HealthConfig::debounce`] *consecutive* evaluations before its alert
//! fires; a sustained condition re-fires at most once per
//! [`HealthConfig::cooldown`] evaluations. One flapping sample never pages
//! anyone, and a wedged device does not page every sweep.

use std::collections::VecDeque;
use titancfi_harness::Json;
use titancfi_obs::Histogram;

/// Alert-engine and scoring thresholds.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Evaluations kept in each device's sliding window.
    pub window: usize,
    /// Violations within the window that constitute a burst.
    pub violation_burst: u64,
    /// Sequence gaps within the window that constitute a storm.
    pub gap_storm: u64,
    /// End-to-end latency p99 SLO in simulated cycles; `0` disables the
    /// SLO alert (the default — latency collection is opt-in per device).
    pub latency_slo_p99: u64,
    /// Consecutive breaching evaluations before an alert fires.
    pub debounce: u32,
    /// Evaluations before the same `(device, kind)` alert may re-fire.
    pub cooldown: u64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            window: 8,
            violation_burst: 3,
            gap_storm: 8,
            latency_slo_p99: 0,
            debounce: 2,
            cooldown: 16,
        }
    }
}

/// What went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// Violations in one device's window reached the burst threshold.
    ViolationBurst,
    /// Sequence gaps in one device's window reached the storm threshold.
    SeqGapStorm,
    /// The supervisor escalated the device for missing its liveness
    /// deadline within the window.
    StalledDevice,
    /// The fleet-wide end-to-end latency p99 exceeded the SLO.
    LatencySloBreach,
    /// The slot burned its whole restart budget and is parked for good.
    RestartBudgetExhausted,
}

impl AlertKind {
    /// Stable label value (Prometheus / JSON).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::ViolationBurst => "violation_burst",
            AlertKind::SeqGapStorm => "seq_gap_storm",
            AlertKind::StalledDevice => "stalled_device",
            AlertKind::LatencySloBreach => "latency_slo_breach",
            AlertKind::RestartBudgetExhausted => "restart_budget_exhausted",
        }
    }
}

impl std::fmt::Display for AlertKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How loud the alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Threshold crossed.
    Warning,
    /// Threshold crossed by 2x, or an unrecoverable condition.
    Critical,
}

impl Severity {
    /// Stable label value (Prometheus / JSON).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One raised alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// What condition fired.
    pub kind: AlertKind,
    /// How loud.
    pub severity: Severity,
    /// The offending device slot, or `None` for fleet-wide conditions.
    pub device: Option<u32>,
    /// Evaluation index (1-based) at which the alert fired.
    pub eval: u64,
    /// The observed value that breached.
    pub value: u64,
    /// The configured threshold it breached.
    pub threshold: u64,
}

impl Alert {
    /// The alert as a JSON object (for report/exposition embedding).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str(self.kind.label().to_string())),
            ("severity", Json::Str(self.severity.label().to_string())),
            (
                "device",
                match self.device {
                    Some(d) => Json::Num(f64::from(d)),
                    None => Json::Null,
                },
            ),
            ("eval", Json::Num(self.eval as f64)),
            ("value", Json::Num(self.value as f64)),
            ("threshold", Json::Num(self.threshold as f64)),
        ])
    }
}

/// Cumulative per-device counters sampled at each evaluation. The monitor
/// does its own differencing; callers just snapshot current totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceCounters {
    /// Frames verified and ingested from this slot.
    pub frames_ok: u64,
    /// Violations the slot's devices have reported across all polls.
    pub violations: u64,
    /// Sequence gaps observed on this slot's stream.
    pub seq_gaps: u64,
    /// Duplicate sequence numbers observed on this slot's stream.
    pub seq_duplicates: u64,
    /// Liveness-deadline escalations of this slot.
    pub escalated_hung: u64,
    /// Trap escalations of this slot.
    pub escalated_trapped: u64,
    /// Failure respawns consumed by this slot so far.
    pub restarts_used: u32,
    /// Whether the slot is permanently parked.
    pub parked: bool,
}

/// One evaluation's delta for a device (derived, windowed).
#[derive(Debug, Clone, Copy, Default)]
struct Delta {
    violations: u64,
    seq_gaps: u64,
    escalated_hung: u64,
}

/// Per-(device, kind) debounce state.
#[derive(Debug, Clone, Copy, Default)]
struct Debounce {
    /// Consecutive evaluations the condition has held.
    streak: u32,
    /// Evaluation index of the last fire, if any.
    last_fired: Option<u64>,
}

impl Debounce {
    /// Advances the state for one evaluation; returns `true` when the
    /// alert should fire now.
    fn advance(&mut self, breaching: bool, eval: u64, debounce: u32, cooldown: u64) -> bool {
        if !breaching {
            self.streak = 0;
            return false;
        }
        self.streak = self.streak.saturating_add(1);
        let armed = self.streak >= debounce.max(1);
        let cooled = self
            .last_fired
            .is_none_or(|last| eval.saturating_sub(last) >= cooldown.max(1));
        if armed && cooled {
            self.last_fired = Some(eval);
            true
        } else {
            false
        }
    }
}

const DEVICE_KINDS: usize = 4; // burst, storm, stalled, budget

fn device_kind_index(kind: AlertKind) -> usize {
    match kind {
        AlertKind::ViolationBurst => 0,
        AlertKind::SeqGapStorm => 1,
        AlertKind::StalledDevice => 2,
        AlertKind::RestartBudgetExhausted => 3,
        AlertKind::LatencySloBreach => unreachable!("latency SLO is fleet-wide"),
    }
}

/// The fleet health monitor: windows, scores, and the alert engine.
#[derive(Debug)]
pub struct HealthMonitor {
    config: HealthConfig,
    /// Evaluations performed (1-based after the first `evaluate`).
    evals: u64,
    /// Previous cumulative sample per slot.
    prev: Vec<DeviceCounters>,
    /// Latest cumulative sample per slot.
    latest: Vec<DeviceCounters>,
    /// Sliding delta window per slot.
    windows: Vec<VecDeque<Delta>>,
    /// Debounce state per slot per device-scoped alert kind.
    debounce: Vec<[Debounce; DEVICE_KINDS]>,
    /// Debounce state for the fleet-wide latency SLO.
    latency_debounce: Debounce,
    /// Latest merged end-to-end latency p99, when latency is collected.
    latency_p99: Option<u64>,
    /// Latest health score per slot (0–100).
    scores: Vec<u8>,
    /// Every alert raised so far, in fire order.
    alerts: Vec<Alert>,
}

impl HealthMonitor {
    /// A monitor over `devices` slots.
    #[must_use]
    pub fn new(devices: usize, config: HealthConfig) -> HealthMonitor {
        HealthMonitor {
            config,
            evals: 0,
            prev: vec![DeviceCounters::default(); devices],
            latest: vec![DeviceCounters::default(); devices],
            windows: (0..devices).map(|_| VecDeque::new()).collect(),
            debounce: vec![[Debounce::default(); DEVICE_KINDS]; devices],
            latency_debounce: Debounce::default(),
            latency_p99: None,
            scores: vec![100; devices],
            alerts: Vec::new(),
        }
    }

    /// Evaluations performed so far.
    #[must_use]
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Latest per-slot health scores (0–100; 100 until first evaluation).
    #[must_use]
    pub fn scores(&self) -> &[u8] {
        &self.scores
    }

    /// Every alert raised so far.
    #[must_use]
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Latest merged end-to-end latency p99 observed, if any.
    #[must_use]
    pub fn latency_p99(&self) -> Option<u64> {
        self.latency_p99
    }

    /// Runs one evaluation over fresh cumulative `counters` (one entry per
    /// slot, same order every call) plus the current merged end-to-end
    /// latency p99 (when devices collect latency). Returns the alerts that
    /// fired *this* evaluation; all alerts also accumulate in
    /// [`HealthMonitor::alerts`].
    ///
    /// # Panics
    ///
    /// Panics if `counters.len()` differs from the monitor's slot count.
    pub fn evaluate(
        &mut self,
        counters: &[DeviceCounters],
        latency_p99: Option<u64>,
    ) -> Vec<Alert> {
        assert_eq!(
            counters.len(),
            self.prev.len(),
            "evaluate wants one counter sample per slot"
        );
        self.evals += 1;
        let eval = self.evals;
        self.latency_p99 = latency_p99;
        let mut fired = Vec::new();

        for (slot, now) in counters.iter().enumerate() {
            let prev = self.prev[slot];
            let delta = Delta {
                violations: now.violations.saturating_sub(prev.violations),
                seq_gaps: now.seq_gaps.saturating_sub(prev.seq_gaps),
                escalated_hung: now.escalated_hung.saturating_sub(prev.escalated_hung),
            };
            self.prev[slot] = *now;
            self.latest[slot] = *now;
            let window = &mut self.windows[slot];
            window.push_back(delta);
            while window.len() > self.config.window.max(1) {
                window.pop_front();
            }
            let violations_w: u64 = window.iter().map(|d| d.violations).sum();
            let gaps_w: u64 = window.iter().map(|d| d.seq_gaps).sum();
            let hung_w: u64 = window.iter().map(|d| d.escalated_hung).sum();

            self.scores[slot] = score(now, violations_w, gaps_w, hung_w);

            let conditions = [
                (
                    AlertKind::ViolationBurst,
                    violations_w >= self.config.violation_burst,
                    violations_w,
                    self.config.violation_burst,
                ),
                (
                    AlertKind::SeqGapStorm,
                    gaps_w >= self.config.gap_storm,
                    gaps_w,
                    self.config.gap_storm,
                ),
                (AlertKind::StalledDevice, hung_w >= 1, hung_w, 1),
                (
                    AlertKind::RestartBudgetExhausted,
                    now.parked,
                    u64::from(now.restarts_used),
                    u64::from(now.restarts_used),
                ),
            ];
            for (kind, breaching, value, threshold) in conditions {
                let state = &mut self.debounce[slot][device_kind_index(kind)];
                if state.advance(breaching, eval, self.config.debounce, self.config.cooldown) {
                    let severity = if kind == AlertKind::RestartBudgetExhausted
                        || (threshold > 0 && value >= threshold.saturating_mul(2))
                    {
                        Severity::Critical
                    } else {
                        Severity::Warning
                    };
                    fired.push(Alert {
                        kind,
                        severity,
                        device: Some(slot as u32),
                        eval,
                        value,
                        threshold,
                    });
                }
            }
        }

        // Fleet-wide latency SLO.
        let slo = self.config.latency_slo_p99;
        let p99 = latency_p99.unwrap_or(0);
        let breaching = slo > 0 && p99 > slo;
        if self.latency_debounce.advance(
            breaching,
            eval,
            self.config.debounce,
            self.config.cooldown,
        ) {
            fired.push(Alert {
                kind: AlertKind::LatencySloBreach,
                severity: if p99 >= slo.saturating_mul(2) {
                    Severity::Critical
                } else {
                    Severity::Warning
                },
                device: None,
                eval,
                value: p99,
                threshold: slo,
            });
        }

        self.alerts.extend(fired.iter().cloned());
        fired
    }

    /// Counts of raised alerts grouped by `(kind, severity)`, in a stable
    /// order (kinds in declaration order, warnings before criticals).
    #[must_use]
    pub fn alert_counts(&self) -> Vec<(AlertKind, Severity, u64)> {
        const KINDS: [AlertKind; 5] = [
            AlertKind::ViolationBurst,
            AlertKind::SeqGapStorm,
            AlertKind::StalledDevice,
            AlertKind::LatencySloBreach,
            AlertKind::RestartBudgetExhausted,
        ];
        let mut out = Vec::new();
        for kind in KINDS {
            for severity in [Severity::Warning, Severity::Critical] {
                let n = self
                    .alerts
                    .iter()
                    .filter(|a| a.kind == kind && a.severity == severity)
                    .count() as u64;
                if n > 0 {
                    out.push((kind, severity, n));
                }
            }
        }
        out
    }

    /// Renders the health snapshot in the Prometheus text exposition
    /// format: fleet counters, per-device gauges, alert totals, and the
    /// merged end-to-end latency histogram when one is collected.
    #[must_use]
    pub fn prometheus(
        &self,
        fleet_counters: &[(&str, u64)],
        latency: Option<&Histogram>,
    ) -> String {
        let mut out = String::new();
        for (name, value) in fleet_counters {
            let metric = sanitize_metric_name(&format!("titancfi_{name}"));
            push_family(&mut out, &metric, "counter", "fleet-wide counter");
            out.push_str(&format!("{metric} {value}\n"));
        }

        push_family(
            &mut out,
            "titancfi_device_health_score",
            "gauge",
            "per-device health score (0-100)",
        );
        for (slot, score) in self.scores.iter().enumerate() {
            out.push_str(&format!(
                "titancfi_device_health_score{{device=\"{slot}\"}} {score}\n"
            ));
        }
        push_family(
            &mut out,
            "titancfi_device_frames_ok",
            "counter",
            "verified frames ingested per device",
        );
        for (slot, c) in self.latest.iter().enumerate() {
            out.push_str(&format!(
                "titancfi_device_frames_ok{{device=\"{slot}\"}} {}\n",
                c.frames_ok
            ));
        }
        push_family(
            &mut out,
            "titancfi_device_violations",
            "counter",
            "CFI violations reported per device",
        );
        for (slot, c) in self.latest.iter().enumerate() {
            out.push_str(&format!(
                "titancfi_device_violations{{device=\"{slot}\"}} {}\n",
                c.violations
            ));
        }
        push_family(
            &mut out,
            "titancfi_device_parked",
            "gauge",
            "1 when the slot exhausted its restart budget",
        );
        for (slot, c) in self.latest.iter().enumerate() {
            out.push_str(&format!(
                "titancfi_device_parked{{device=\"{slot}\"}} {}\n",
                u64::from(c.parked)
            ));
        }

        push_family(
            &mut out,
            "titancfi_alerts_total",
            "counter",
            "alerts raised by kind and severity",
        );
        for (kind, severity, n) in self.alert_counts() {
            out.push_str(&format!(
                "titancfi_alerts_total{{kind=\"{kind}\",severity=\"{severity}\"}} {n}\n"
            ));
        }

        if let Some(hist) = latency {
            push_family(
                &mut out,
                "titancfi_latency_e2e_cycles",
                "histogram",
                "end-to-end commit-log latency in simulated cycles",
            );
            let mut cumulative = 0u64;
            for (bound, count) in hist.buckets() {
                cumulative += count;
                let le = if bound == u64::MAX {
                    "+Inf".to_string()
                } else {
                    bound.to_string()
                };
                out.push_str(&format!(
                    "titancfi_latency_e2e_cycles_bucket{{le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!("titancfi_latency_e2e_cycles_sum {}\n", hist.sum));
            out.push_str(&format!(
                "titancfi_latency_e2e_cycles_count {}\n",
                hist.count
            ));
        }
        out
    }

    /// The health snapshot as JSON: evaluation count, scores, alerts, and
    /// the latency p99 if collected.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("evals", Json::Num(self.evals as f64)),
            (
                "scores",
                Json::Arr(
                    self.scores
                        .iter()
                        .map(|&s| Json::Num(f64::from(s)))
                        .collect(),
                ),
            ),
            (
                "alerts",
                Json::Arr(self.alerts.iter().map(Alert::to_json).collect()),
            ),
            (
                "latency_p99",
                match self.latency_p99 {
                    Some(v) => Json::Num(v as f64),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// The per-device health score: start at 100, subtract bounded penalties
/// for windowed violations, gaps, and hangs plus cumulative restarts; a
/// parked slot scores 0 outright.
fn score(now: &DeviceCounters, violations_w: u64, gaps_w: u64, hung_w: u64) -> u8 {
    if now.parked {
        return 0;
    }
    let mut penalty = (10 * violations_w).min(40);
    penalty += (2 * gaps_w).min(20);
    penalty += (15 * hung_w).min(30);
    penalty += (5 * u64::from(now.restarts_used)).min(15);
    (100u64.saturating_sub(penalty)) as u8
}

fn push_family(out: &mut String, metric: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {metric} {help}\n"));
    out.push_str(&format!("# TYPE {metric} {kind}\n"));
}

fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A strict-enough validator for the Prometheus text exposition format:
/// every line must be a `# HELP`/`# TYPE` comment or a `name{labels} value`
/// sample with a legal metric name and a parseable value; every sample's
/// family must have a prior `# TYPE`; histogram `le` buckets must be
/// cumulative and end at `+Inf` with `_count` equal to the `+Inf` bucket.
///
/// # Errors
///
/// Returns a description of the first malformed line or histogram family.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut typed: Vec<(String, String)> = Vec::new(); // (family, type)
                                                       // (family, last cumulative bucket value, saw +Inf, last le)
    let mut hist_state: Vec<(String, u64, bool, f64)> = Vec::new();
    let mut counts: Vec<(String, u64)> = Vec::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !is_metric_name(name) {
                        return Err(format!("line {lineno}: bad HELP metric name {name:?}"));
                    }
                }
                "TYPE" => {
                    let kind = parts.next().unwrap_or("");
                    if !is_metric_name(name) {
                        return Err(format!("line {lineno}: bad TYPE metric name {name:?}"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown TYPE {kind:?}"));
                    }
                    typed.push((name.to_string(), kind.to_string()));
                }
                _ => {
                    return Err(format!(
                        "line {lineno}: unknown comment keyword {keyword:?}"
                    ))
                }
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: comments must start with '# '"));
        }

        // A sample: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample has no value"))?;
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: unparseable value {value:?}"));
        }
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                (n, Some(labels))
            }
            None => (name_labels, None),
        };
        if !is_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        let mut le: Option<f64> = None;
        if let Some(labels) = labels {
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (key, val) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: label {pair:?} has no '='"))?;
                if !is_metric_name(key) {
                    return Err(format!("line {lineno}: bad label name {key:?}"));
                }
                let val = val
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: label value {val:?} not quoted"))?;
                if key == "le" {
                    le = Some(if val == "+Inf" {
                        f64::INFINITY
                    } else {
                        val.parse::<f64>()
                            .map_err(|_| format!("line {lineno}: bad le value {val:?}"))?
                    });
                }
            }
        }

        // Family = name minus histogram suffixes.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                line.starts_with(name)
                    .then(|| name.strip_suffix(suffix))
                    .flatten()
            })
            .filter(|f| typed.iter().any(|(n, k)| n == *f && k == "histogram"))
            .unwrap_or(name);
        if !typed.iter().any(|(n, _)| n == family) {
            return Err(format!("line {lineno}: sample {name:?} has no # TYPE"));
        }

        // Histogram bookkeeping.
        if let Some(family) = name.strip_suffix("_bucket") {
            if typed.iter().any(|(n, k)| n == family && k == "histogram") {
                let le = le.ok_or_else(|| format!("line {lineno}: histogram bucket without le"))?;
                let cum = value
                    .parse::<f64>()
                    .map_err(|_| format!("line {lineno}: bucket value {value:?}"))?
                    as u64;
                match hist_state.iter_mut().find(|(f, ..)| f == family) {
                    Some((_, last_cum, saw_inf, last_le)) => {
                        if cum < *last_cum {
                            return Err(format!(
                                "line {lineno}: histogram {family:?} buckets not cumulative"
                            ));
                        }
                        if le <= *last_le {
                            return Err(format!(
                                "line {lineno}: histogram {family:?} le not increasing"
                            ));
                        }
                        *last_cum = cum;
                        *last_le = le;
                        *saw_inf |= le.is_infinite();
                    }
                    None => hist_state.push((family.to_string(), cum, le.is_infinite(), le)),
                }
            }
        }
        if let Some(family) = name.strip_suffix("_count") {
            if typed.iter().any(|(n, k)| n == family && k == "histogram") {
                let count = value
                    .parse::<f64>()
                    .map_err(|_| format!("line {lineno}: count value {value:?}"))?
                    as u64;
                counts.push((family.to_string(), count));
            }
        }
    }

    for (family, cum, saw_inf, _) in &hist_state {
        if !saw_inf {
            return Err(format!("histogram {family:?} is missing its +Inf bucket"));
        }
        if let Some((_, count)) = counts.iter().find(|(f, _)| f == family) {
            if count != cum {
                return Err(format!(
                    "histogram {family:?}: _count {count} != +Inf bucket {cum}"
                ));
            }
        }
    }
    Ok(())
}

fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> HealthConfig {
        HealthConfig {
            window: 4,
            violation_burst: 3,
            gap_storm: 4,
            latency_slo_p99: 0,
            debounce: 2,
            cooldown: 8,
        }
    }

    fn clean(frames: u64) -> DeviceCounters {
        DeviceCounters {
            frames_ok: frames,
            ..DeviceCounters::default()
        }
    }

    #[test]
    fn clean_counters_raise_no_alerts_and_score_100() {
        let mut mon = HealthMonitor::new(2, quick_config());
        for eval in 1..=20u64 {
            let fired = mon.evaluate(&[clean(eval * 10), clean(eval * 7)], None);
            assert!(fired.is_empty(), "eval {eval}: {fired:?}");
        }
        assert_eq!(mon.alerts().len(), 0);
        assert_eq!(mon.scores(), &[100, 100]);
    }

    #[test]
    fn violation_burst_fires_after_debounce_with_severity() {
        let mut mon = HealthMonitor::new(1, quick_config());
        // Eval 1: 6 violations land (>= 2x threshold 3). Debounce = 2, so
        // nothing fires yet.
        let mut c = clean(10);
        c.violations = 6;
        assert!(mon.evaluate(&[c], None).is_empty(), "debounce holds fire");
        // Eval 2: still breaching (windowed) — fires Critical.
        c.violations += 6;
        let fired = mon.evaluate(&[c], None);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::ViolationBurst);
        assert_eq!(fired[0].severity, Severity::Critical);
        assert_eq!(fired[0].device, Some(0));
        assert_eq!(fired[0].value, 12);
        // A sustained violation stream stays silent until the cooldown
        // elapses: fired at eval 2, cooldown 8 => evals 3..=9 quiet, 10
        // refires.
        for _ in 0..7 {
            c.violations += 6;
            assert!(mon.evaluate(&[c], None).is_empty());
        }
        c.violations += 6;
        let refire = mon.evaluate(&[c], None);
        assert_eq!(refire.len(), 1, "cooldown elapsed: refire");
        assert!(mon.scores()[0] < 100, "burst dents the health score");
    }

    #[test]
    fn condition_clearing_resets_the_debounce_streak() {
        let mut mon = HealthMonitor::new(1, quick_config());
        let mut sick = clean(5);
        sick.violations = 4;
        assert!(mon.evaluate(&[sick], None).is_empty());
        // Window is 4: after 4 clean evals the burst ages out entirely.
        for _ in 0..4 {
            mon.evaluate(&[sick], None); // cumulative unchanged => delta 0
        }
        // Now the window holds zero violations; streak must be reset.
        let fired = mon.evaluate(&[sick], None);
        assert!(fired.len() <= 1, "at most the original debounced fire");
        assert_eq!(mon.scores()[0], 100, "clean window restores the score");
    }

    #[test]
    fn parked_slot_is_critical_and_scores_zero() {
        let config = HealthConfig {
            debounce: 1,
            ..quick_config()
        };
        let mut mon = HealthMonitor::new(2, config);
        let mut parked = clean(3);
        parked.parked = true;
        parked.restarts_used = 3;
        let fired = mon.evaluate(&[parked, clean(9)], None);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::RestartBudgetExhausted);
        assert_eq!(fired[0].severity, Severity::Critical);
        assert_eq!(mon.scores()[0], 0);
        assert_eq!(mon.scores()[1], 100);
    }

    #[test]
    fn stalled_device_fires_on_hung_escalations() {
        let config = HealthConfig {
            debounce: 1,
            ..quick_config()
        };
        let mut mon = HealthMonitor::new(1, config);
        let mut c = clean(4);
        c.escalated_hung = 1;
        let fired = mon.evaluate(&[c], None);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::StalledDevice);
    }

    #[test]
    fn latency_slo_breach_is_fleet_wide() {
        let config = HealthConfig {
            latency_slo_p99: 1_000,
            debounce: 1,
            ..quick_config()
        };
        let mut mon = HealthMonitor::new(3, config);
        let devices = [clean(1), clean(2), clean(3)];
        assert!(mon.evaluate(&devices, Some(900)).is_empty(), "under SLO");
        let fired = mon.evaluate(&devices, Some(2_500));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::LatencySloBreach);
        assert_eq!(fired[0].severity, Severity::Critical, ">= 2x SLO");
        assert_eq!(fired[0].device, None);
    }

    #[test]
    fn prometheus_output_validates_and_carries_the_histogram() {
        let mut mon = HealthMonitor::new(2, quick_config());
        let mut sick = clean(10);
        sick.violations = 7;
        mon.evaluate(&[sick, clean(20)], Some(50));
        mon.evaluate(&[sick, clean(25)], Some(50));
        let mut hist = Histogram::cycles();
        for v in [3, 17, 90, 1_000] {
            hist.record(v);
        }
        let text = mon.prometheus(
            &[("fleet.frames.ok", 35), ("fleet.violations", 7)],
            Some(&hist),
        );
        validate_prometheus(&text).expect("exposition must be valid Prometheus text");
        assert!(text.contains("titancfi_fleet_frames_ok 35"));
        assert!(text.contains("titancfi_device_health_score{device=\"0\"}"));
        assert!(text.contains("titancfi_alerts_total{kind=\"violation_burst\""));
        assert!(text.contains("titancfi_latency_e2e_cycles_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("titancfi_latency_e2e_cycles_count 4"));
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate_prometheus("9metric 1\n").is_err(), "bad name");
        assert!(
            validate_prometheus("# TYPE m counter\nm notanumber\n").is_err(),
            "bad value"
        );
        assert!(
            validate_prometheus("orphan_sample 3\n").is_err(),
            "sample without TYPE"
        );
        assert!(
            validate_prometheus(
                "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n"
            )
            .is_err(),
            "non-cumulative buckets"
        );
        assert!(
            validate_prometheus("# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\n").is_err(),
            "missing +Inf"
        );
    }

    #[test]
    fn json_snapshot_round_trips() {
        let mut mon = HealthMonitor::new(1, quick_config());
        let mut c = clean(1);
        c.violations = 9;
        mon.evaluate(&[c], None);
        mon.evaluate(&[c], None);
        let json = mon.to_json();
        let parsed = Json::parse(&json.encode()).expect("snapshot encodes to valid JSON");
        assert_eq!(parsed.get("evals").and_then(Json::as_num), Some(2.0));
        let alerts = match parsed.get("alerts") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("alerts must be an array, got {other:?}"),
        };
        assert_eq!(alerts.len(), 1);
        assert_eq!(
            alerts[0].get("kind").and_then(Json::as_str),
            Some("violation_burst")
        );
    }
}
