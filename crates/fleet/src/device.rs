//! Fleet devices: the unit the supervisor schedules.
//!
//! A device is anything that makes bounded progress per [`Device::poll`]
//! and streams commit-log frames into its [`Transport`]. The production
//! implementation is [`SocDevice`] — a full [`SystemOnChip`] co-simulation
//! advanced one cycle-slice at a time (a cheap resumable snapshot: the sim
//! stays live between polls, so "snapshotting" a device costs nothing) —
//! but the supervisor tests also plug in scripted doubles (hanging,
//! trapping, flaky) through the same trait.

use crate::transport::Transport;
use cva6_model::Halt;
use riscv_asm::Program;
use std::collections::VecDeque;
use std::sync::Arc;
use titancfi::wire::Frame;
use titancfi::CommitLog;
use titancfi_faults::FaultConfig;
use titancfi_soc::{SocConfig, SystemOnChip};

/// What a device looks like after one poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceStatus {
    /// Still making progress; poll again.
    Running,
    /// The guest program finished cleanly (its report is folded into the
    /// poll's counters); the slot may respawn a fresh run.
    Completed,
    /// The device is wedged or its RoT trapped — `Halt::FirmwareTrap`
    /// semantics surfaced to the fleet layer. Must be escalated.
    Trapped(String),
}

/// One poll's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollOutcome {
    /// Simulated cycles advanced by this poll.
    pub cycles: u64,
    /// Frames pushed into the transport by this poll.
    pub frames: u64,
    /// Violations flagged by the RoT during this poll.
    pub violations: u64,
    /// Whether the transport pushed back (`WouldBlock`) during this poll.
    pub stalled: bool,
    /// Device state after the poll.
    pub status: DeviceStatus,
}

impl PollOutcome {
    /// Zero progress counts as "idle" for the liveness deadline: no cycles
    /// advanced and no frames moved. A backpressured poll (`stalled`) is
    /// *not* idle — the device is healthy, the transport is full; only the
    /// ingest side can relieve it, and escalating it would lose frames.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.cycles == 0 && self.frames == 0 && !self.stalled
    }
}

/// A schedulable fleet device.
pub trait Device: Send {
    /// Advances the device one bounded step and flushes what it can into
    /// the transport.
    fn poll(&mut self) -> PollOutcome;
    /// Flushes buffered frames without simulating further — the shutdown
    /// drain path. Returns the number of frames still buffered after the
    /// attempt (zero means fully drained).
    fn flush(&mut self) -> usize;
    /// Last wire sequence number this device assigned (for seq continuity
    /// across a respawn in the same slot).
    fn last_seq(&self) -> u16;
    /// Total frames this device has pushed into its transport.
    fn frames_sent(&self) -> u64;
    /// The device's end-to-end per-log latency histogram, when it collects
    /// one (opt-in; the default device collects nothing and returns
    /// `None`, keeping the hot path free of instrumentation).
    fn latency_e2e(&self) -> Option<titancfi_obs::Histogram> {
        None
    }
}

/// Configuration for [`SocDevice`].
#[derive(Clone)]
pub struct SocDeviceConfig {
    /// Simulated cycles per poll slice.
    pub slice_cycles: u64,
    /// Hard per-run cycle ceiling; a run past it is wedged and reported
    /// [`DeviceStatus::Trapped`] (the in-sim analog of a liveness breach).
    pub max_run_cycles: u64,
    /// Guest program every run executes (shared, pre-assembled).
    pub program: Arc<Program>,
    /// Host RAM per device — small, so thousand-device fleets fit.
    pub mem_size: usize,
    /// Optional fault schedule for the device's CFI transport.
    pub faults: Option<FaultConfig>,
    /// Log Writer watchdog/retry/escalation policy (`None` = SoC default).
    pub resilience: Option<titancfi::ResilienceConfig>,
    /// Collect per-log latency spans ([`SystemOnChip::attach_latency`]) so
    /// the fleet health monitor can aggregate end-to-end percentiles.
    /// Costs strict stepping; off by default.
    pub latency: bool,
}

impl SocDeviceConfig {
    /// A config running `program` with fleet-scale defaults.
    #[must_use]
    pub fn new(program: Arc<Program>) -> SocDeviceConfig {
        SocDeviceConfig {
            slice_cycles: 2_000,
            max_run_cycles: 4_000_000,
            program,
            mem_size: 1 << 16,
            faults: None,
            resilience: None,
            latency: false,
        }
    }
}

/// Frames encoded per [`Transport::send_many`] call from the pending
/// buffer — big enough to cover a whole poll slice's typical output, small
/// enough to live comfortably on the reused batch buffer.
const PUMP_BATCH: usize = 64;

/// A simulated SoC as a fleet device.
///
/// Each poll advances the co-simulation by one slice, drains the commit-log
/// tap, assigns wire sequence numbers *at send time* (so backpressured
/// frames buffered locally never create seq gaps), and pushes frames until
/// the transport pushes back.
pub struct SocDevice {
    soc: SystemOnChip,
    tx: Arc<dyn Transport>,
    config: SocDeviceConfig,
    /// Next slice's absolute cycle limit.
    cursor: u64,
    /// Logs drained from the tap but not yet accepted by the transport.
    pending: VecDeque<CommitLog>,
    /// Reused frame batch for [`Transport::send_many`] bursts.
    batch: Vec<Frame>,
    /// Last assigned wire seq (continues across respawns via `start_seq`).
    seq: u16,
    frames_sent: u64,
    violations_seen: u64,
    halted: bool,
}

impl SocDevice {
    /// Boots a fresh device. `start_seq` is the last seq the previous run
    /// in this slot assigned (0 for a brand-new slot), so the monitor-side
    /// sequence tracker sees one continuous stream per slot.
    #[must_use]
    pub fn new(config: SocDeviceConfig, tx: Arc<dyn Transport>, start_seq: u16) -> SocDevice {
        let mut soc_config = SocConfig {
            mem_size: config.mem_size,
            faults: config.faults,
            // Fleet devices always ride the PR 8 fast path: predecoded
            // instruction caches plus block-compiled stepping, pinned on
            // explicitly rather than inherited from the process-wide
            // default (a test flipping the global toggle must not quietly
            // put a whole fleet back on strict stepping). When a latency
            // collector or fault injector is attached, `run_slice` itself
            // forces strict scheduling — the flags are preconditions, not
            // overrides, so observed devices stay cycle-exact per-commit.
            fast_path: true,
            block_compile: true,
            // Fleet workloads are a few hundred instructions, not kernels;
            // the default caches (8192 decode + 4096 block slots, per core)
            // would dominate per-device memory at 1024-device scale and
            // turn the sweep into a page-fault benchmark. Right-size them —
            // architecturally invisible, entries re-predecode on demand.
            decode_cache_slots: 1024,
            block_cache_slots: 256,
            ..SocConfig::default()
        };
        if let Some(resilience) = config.resilience {
            soc_config.resilience = resilience;
        }
        let mut soc = SystemOnChip::new(&config.program, soc_config);
        soc.enable_log_tap();
        if config.latency {
            soc.attach_latency();
        }
        let cursor = config.slice_cycles;
        SocDevice {
            soc,
            tx,
            config,
            cursor,
            pending: VecDeque::new(),
            batch: Vec::with_capacity(PUMP_BATCH),
            seq: start_seq,
            frames_sent: 0,
            violations_seen: 0,
            halted: false,
        }
    }

    /// Sends buffered logs until the transport pushes back, in batches of
    /// [`PUMP_BATCH`] so one transport synchronization episode covers a
    /// whole burst. Sequence numbers are still assigned *at accept time*:
    /// the batch is built with tentative consecutive seqs and only the
    /// accepted prefix advances `self.seq`, so a partial batch never burns
    /// a number and the monitor-side stream stays gap-free. Returns
    /// (frames sent, stalled?).
    fn pump(&mut self) -> (u64, bool) {
        let mut sent = 0u64;
        while !self.pending.is_empty() {
            self.batch.clear();
            for (i, log) in self.pending.iter().take(PUMP_BATCH).enumerate() {
                self.batch.push(Frame {
                    seq: self.seq.wrapping_add(i as u16 + 1),
                    log: *log,
                });
            }
            let accepted = self.tx.send_many(&self.batch);
            self.seq = self.seq.wrapping_add(accepted as u16);
            self.pending.drain(..accepted);
            sent += accepted as u64;
            if accepted < self.batch.len() {
                self.frames_sent += sent;
                return (sent, true);
            }
        }
        self.frames_sent += sent;
        (sent, false)
    }
}

impl Device for SocDevice {
    fn poll(&mut self) -> PollOutcome {
        if self.halted {
            // Nothing left to simulate; just keep flushing the backlog.
            let (frames, stalled) = self.pump();
            return PollOutcome {
                cycles: 0,
                frames,
                violations: 0,
                stalled,
                status: if self.pending.is_empty() {
                    DeviceStatus::Completed
                } else {
                    DeviceStatus::Running
                },
            };
        }
        let before_cycles = self.soc.cycles();
        let before_violations = self.soc.violation_count() as u64;
        let halt = self.soc.run_slice(self.cursor);
        self.cursor += self.config.slice_cycles;
        self.pending.extend(self.soc.drain_log_tap());
        let (frames, stalled) = self.pump();
        let cycles = self.soc.cycles() - before_cycles;
        let violations = self.soc.violation_count() as u64 - before_violations;
        self.violations_seen += violations;
        let status = match halt {
            None if self.soc.cycles() >= self.config.max_run_cycles => {
                self.halted = true;
                DeviceStatus::Trapped(format!(
                    "wedged: no halt within {} cycles",
                    self.config.max_run_cycles
                ))
            }
            None => DeviceStatus::Running,
            Some(halt) => {
                // Close out the run: the drain loop inside `finish` lets the
                // RoT check the last queued logs, and the final tap drain
                // catches anything pushed during it.
                let report = self.soc.finish(halt);
                self.pending.extend(self.soc.drain_log_tap());
                self.halted = true;
                match report.halt {
                    Halt::FirmwareTrap(trap) => {
                        DeviceStatus::Trapped(format!("firmware trap: {trap:?}"))
                    }
                    Halt::Fault(trap) => DeviceStatus::Trapped(format!("host fault: {trap:?}")),
                    Halt::Breakpoint | Halt::Ecall | Halt::Budget => {
                        if self.pending.is_empty() {
                            DeviceStatus::Completed
                        } else {
                            // Completed the sim but still holds frames; stay
                            // Running until the backlog drains.
                            DeviceStatus::Running
                        }
                    }
                }
            }
        };
        PollOutcome {
            cycles,
            frames,
            violations,
            stalled,
            status,
        }
    }

    fn flush(&mut self) -> usize {
        if !self.halted {
            // Capture whatever the tap holds even mid-run, so a drained
            // shutdown loses nothing that was already committed.
            self.pending.extend(self.soc.drain_log_tap());
        }
        self.pump();
        self.pending.len()
    }

    fn last_seq(&self) -> u16 {
        self.seq
    }

    fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    fn latency_e2e(&self) -> Option<titancfi_obs::Histogram> {
        self.soc.latency_spans().map(|s| s.end_to_end.clone())
    }
}

/// Assembles the fleet's default guest: a benign, call-dense kernel (nested
/// direct calls + returns) sized by `outer_loops`, chosen to exercise
/// exactly the instruction classes the CFI filter streams.
///
/// # Panics
///
/// Panics if the built-in source fails to assemble (a bug, not an input
/// condition).
#[must_use]
pub fn call_dense_workload(outer_loops: u32) -> Program {
    let source = format!(
        "
        _start:
            li s0, {outer_loops}
        outer:
            call work
            addi s0, s0, -1
            bnez s0, outer
            ebreak
        work:
            addi s1, ra, 0
            li t0, 4
        inner:
            call leaf
            addi t0, t0, -1
            bnez t0, inner
            addi ra, s1, 0
            ret
        leaf:
            addi a0, a0, 1
            ret
        "
    );
    riscv_asm::assemble(&source, riscv_isa::Xlen::Rv64, 0x8000_0000)
        .expect("fleet workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Backend, Recv};
    use titancfi::wire::SeqTracker;

    fn small_device(tx: Arc<dyn Transport>) -> SocDevice {
        let program = Arc::new(call_dense_workload(8));
        SocDevice::new(SocDeviceConfig::new(program), tx, 0)
    }

    #[test]
    fn soc_device_streams_its_whole_run_without_loss() {
        for kind in Backend::ALL {
            let tx: Arc<dyn Transport> = Arc::from(kind.build(16));
            let mut dev = small_device(Arc::clone(&tx));
            let mut tracker = SeqTracker::new();
            let mut got = 0u64;
            let mut polls = 0;
            loop {
                polls += 1;
                assert!(polls < 10_000, "{kind}: device never completed");
                let outcome = dev.poll();
                loop {
                    match tx.try_recv() {
                        Recv::Frame(f) => {
                            assert!(tracker.observe(f.seq), "{kind}: seq break");
                            got += 1;
                        }
                        Recv::Empty => break,
                        Recv::Corrupt => panic!("{kind}: corrupt frame"),
                    }
                }
                match outcome.status {
                    DeviceStatus::Completed => break,
                    DeviceStatus::Trapped(why) => panic!("{kind}: trapped: {why}"),
                    DeviceStatus::Running => {}
                }
            }
            assert_eq!(got, dev.frames_sent(), "{kind}: every sent frame ingested");
            assert!(got > 0, "{kind}: call-dense guest must stream logs");
            assert_eq!(tracker.duplicates, 0, "{kind}");
            assert_eq!(tracker.gaps, 0, "{kind}");
        }
    }

    #[test]
    fn backpressure_buffers_locally_and_never_skips_seq() {
        // Capacity 1 forces WouldBlock constantly; the device must buffer
        // and retry without ever burning a sequence number.
        let tx: Arc<dyn Transport> = Arc::from(Backend::InProcRing.build(1));
        let mut dev = small_device(Arc::clone(&tx));
        let mut tracker = SeqTracker::new();
        let mut got = 0u64;
        let mut stalled_at_least_once = false;
        for _ in 0..200_000 {
            let outcome = dev.poll();
            stalled_at_least_once |= outcome.stalled;
            while let Recv::Frame(f) = tx.try_recv() {
                assert!(tracker.observe(f.seq), "seq break under backpressure");
                got += 1;
            }
            if outcome.status == DeviceStatus::Completed {
                break;
            }
        }
        assert!(stalled_at_least_once, "capacity-1 ring must stall");
        assert_eq!(got, dev.frames_sent());
        assert_eq!((tracker.duplicates, tracker.gaps), (0, 0));
        assert_eq!(tx.stats().would_block, {
            let s = tx.stats();
            assert!(s.would_block > 0);
            s.would_block
        });
    }

    #[test]
    fn batched_recv_preserves_order_and_seq_continuity_across_respawns() {
        // Three back-to-back runs in the same slot, drained exclusively
        // through `try_recv_many`: the batched path must see one gap-free,
        // duplicate-free, in-order stream across every respawn boundary,
        // on every backend.
        for kind in Backend::ALL {
            let tx: Arc<dyn Transport> = Arc::from(kind.build(512));
            let mut tracker = SeqTracker::new();
            let mut last_seq = 0u16;
            let mut expected_next = 1u16;
            let mut total = 0u64;
            for run in 0..3 {
                let program = Arc::new(call_dense_workload(2));
                let mut dev =
                    SocDevice::new(SocDeviceConfig::new(program), Arc::clone(&tx), last_seq);
                for _ in 0..10_000 {
                    if dev.poll().status == DeviceStatus::Completed {
                        break;
                    }
                }
                last_seq = dev.last_seq();
                let mut buf = [Frame {
                    seq: 0,
                    log: CommitLog::default(),
                }; 32];
                loop {
                    let batch = tx.try_recv_many(&mut buf);
                    assert_eq!(batch.corrupt, 0, "{kind} run {run}");
                    for f in &buf[..batch.received] {
                        assert_eq!(f.seq, expected_next, "{kind} run {run}: wire order");
                        expected_next = expected_next.wrapping_add(1);
                        assert!(tracker.observe(f.seq), "{kind} run {run}");
                        total += 1;
                    }
                    if batch.received < buf.len() {
                        break;
                    }
                }
                assert_eq!(
                    (tracker.duplicates, tracker.gaps),
                    (0, 0),
                    "{kind} run {run}"
                );
            }
            assert!(total > 0, "{kind}: runs must stream frames");
        }
    }

    #[test]
    fn seq_continues_across_respawn_in_the_same_slot() {
        let tx: Arc<dyn Transport> = Arc::from(Backend::ShmRing.build(512));
        let mut tracker = SeqTracker::new();
        let mut last_seq = 0u16;
        for run in 0..3 {
            let program = Arc::new(call_dense_workload(2));
            let mut dev = SocDevice::new(SocDeviceConfig::new(program), Arc::clone(&tx), last_seq);
            for _ in 0..10_000 {
                if dev.poll().status == DeviceStatus::Completed {
                    break;
                }
            }
            last_seq = dev.last_seq();
            while let Recv::Frame(f) = tx.try_recv() {
                assert!(
                    tracker.observe(f.seq),
                    "run {run}: seq break across respawn"
                );
            }
            assert_eq!((tracker.duplicates, tracker.gaps), (0, 0), "run {run}");
        }
    }
}
