//! `titancfi-fleet` — fleet-scale CFI monitoring.
//!
//! The paper puts one TitanCFI monitor next to one host core. This crate
//! asks the deployment question: what does a *fleet* of monitored SoCs
//! look like to the maintainer who has to watch them all? It runs N
//! simulated devices (full [`titancfi_soc::SystemOnChip`] co-simulations,
//! advanced in cheap resumable slices) as a sharded fleet and funnels
//! every 28-byte commit-log record into one monitoring service:
//!
//! * [`transport`] — the wire layer: three interchangeable backends
//!   (lock-free in-process SPSC ring, shared-memory-style ring,
//!   length-prefixed byte stream) all framing records with the resilience
//!   layer's seq+checksum integrity word, so corruption, duplication and
//!   loss are *detected at ingest*, with explicit `WouldBlock`
//!   backpressure and batched send/receive amortizing one synchronization
//!   episode over a whole burst;
//! * [`device`] — a [`device::SocDevice`] wraps a co-simulation as a
//!   pollable device streaming its commit-log tap through a transport;
//! * [`supervisor`] — fail-fast lifecycle: liveness deadlines, immediate
//!   reap on hang or trap, bounded restart budgets, a permanent-failure
//!   ledger;
//! * [`health`] — the fleet health pipeline: sliding-window per-device
//!   aggregation, 0–100 health scores, a severity-debounced alert engine
//!   (violation bursts, seq-gap storms, stalled devices, latency-SLO
//!   breaches, exhausted restart budgets), and Prometheus-text / JSON
//!   exposition snapshots;
//! * [`service`] — the fleet itself: shard workers with work-stealing
//!   ([`titancfi_harness::StealQueues`]) running devices in cache-friendly
//!   turn bursts, *sharded* poll-coupled ingest (each worker verifies the
//!   frames of the slots it just ran plus a fixed partition it owns),
//!   aggregation into [`titancfi_obs::SimMetrics`], periodic JSONL
//!   snapshots, and a drain-and-shutdown protocol whose invariant is
//!   frames-in == frames-out.
//!
//! The `titancfi-bench` crate's `fleet` binary sweeps device counts over
//! this service to produce the devices × commit-logs/sec saturation curve
//! (`BENCH_fleet.json`).

pub mod device;
pub mod health;
pub mod service;
pub mod supervisor;
pub mod transport;

pub use device::{
    call_dense_workload, Device, DeviceStatus, PollOutcome, SocDevice, SocDeviceConfig,
};
pub use health::{
    validate_prometheus, Alert, AlertKind, DeviceCounters, HealthConfig, HealthMonitor, Severity,
};
pub use service::{run_fleet, FleetConfig, FleetReport};
pub use supervisor::{
    DeviceFactory, EscalationReason, FailureRecord, SlotHealth, SupervisionConfig,
    SupervisionStats, Supervisor, Turn,
};
pub use transport::{Backend, Recv, RecvBatch, SendError, Transport, TransportStats};
