//! End-to-end fleet tests: real `SystemOnChip` devices, real fault
//! injection, the full boot → run → ingest → drain lifecycle.

use std::sync::Arc;
use titancfi::{FailPolicy, ResilienceConfig};
use titancfi_faults::{FaultClass, FaultConfig};
use titancfi_fleet::{
    call_dense_workload, run_fleet, validate_prometheus, AlertKind, Backend, FleetConfig,
    HealthConfig, SocDevice, SocDeviceConfig, SupervisionConfig,
};

#[test]
fn trapping_devices_are_escalated_parked_and_ledgered_without_fleet_loss() {
    let program = Arc::new(call_dense_workload(4));
    // Slot 0 traps its RoT firmware on (nearly) every CFI check; the
    // other slots are clean. The supervisor must burn slot 0's restart
    // budget, park it with a ledger entry, and leave the rest streaming.
    const TRAPPED_SLOT: u32 = 0;
    const BUDGET: u32 = 2;
    let config = FleetConfig {
        devices: 4,
        shards: 2,
        passes: 600,
        transport_capacity: 32,
        supervision: SupervisionConfig {
            liveness_polls: 200,
            restart_budget: BUDGET,
        },
        ..FleetConfig::default()
    };
    let report = run_fleet(&config, move |slot, seq, tx| {
        let mut dev_config = SocDeviceConfig::new(Arc::clone(&program));
        if slot == TRAPPED_SLOT {
            dev_config.faults = Some(FaultConfig::only(
                FaultClass::FirmwareTrap,
                1,
                0x5EED_0000 + u64::from(slot),
            ));
        }
        Box::new(SocDevice::new(dev_config, tx, seq))
    });

    // The sick slot: initial boot + BUDGET respawns all trap, then park.
    assert_eq!(report.supervision.escalated_trapped, u64::from(BUDGET) + 1);
    assert_eq!(report.supervision.respawns, u64::from(BUDGET));
    assert_eq!(report.supervision.permanent_failures, 1);
    assert_eq!(report.ledger.len(), 1);
    assert_eq!(report.ledger[0].slot, TRAPPED_SLOT);
    assert_eq!(report.ledger[0].restarts_used, BUDGET);
    assert!(
        report.ledger[0].reason.contains("trap"),
        "ledger records why: {}",
        report.ledger[0].reason
    );

    // The healthy slots: plenty of clean completed runs and a lossless
    // stream end to end.
    assert!(
        report.supervision.completed_runs > 0,
        "healthy slots recycle"
    );
    assert!(report.frames_ok > 0);
    assert!(
        report.is_lossless(),
        "lost={} corrupt={} undrained={}",
        report.frames_lost,
        report.frames_corrupt,
        report.undrained_devices
    );
    assert_eq!(report.seq_duplicates, 0);
    assert_eq!(report.seq_gaps, 0, "seq continuity survives reaping");
}

#[test]
fn clean_fleet_raises_zero_alerts_and_valid_exposition() {
    let program = Arc::new(call_dense_workload(4));
    let config = FleetConfig {
        devices: 6,
        shards: 3,
        passes: 800,
        transport_capacity: 32,
        // Hair-trigger thresholds: any violation, gap, or escalation on a
        // clean fleet would page immediately — the point of the test.
        health: HealthConfig {
            violation_burst: 1,
            gap_storm: 1,
            debounce: 1,
            ..HealthConfig::default()
        },
        ..FleetConfig::default()
    };
    let report = run_fleet(&config, move |_, seq, tx| {
        Box::new(SocDevice::new(
            SocDeviceConfig::new(Arc::clone(&program)),
            tx,
            seq,
        ))
    });
    assert!(report.is_lossless());
    assert!(report.frames_ok > 0);
    assert!(
        report.alerts.is_empty(),
        "clean fleet must raise zero alerts: {:?}",
        report.alerts
    );
    assert!(
        report.health_scores.iter().all(|&s| s == 100),
        "clean fleet scores perfect health: {:?}",
        report.health_scores
    );
    validate_prometheus(&report.exposition).expect("exposition parses as Prometheus text");
    assert!(report.exposition.contains("titancfi_fleet_frames_ok"));
    assert!(report
        .exposition
        .contains("titancfi_device_health_score{device=\"5\"}"));
}

#[test]
fn alert_engine_pages_on_fault_injected_fleet() {
    let program = Arc::new(call_dense_workload(4));
    // Slot 0 drops every doorbell ring; a short fail-closed watchdog turns
    // each dropped log into a forced violation, which must surface as a
    // ViolationBurst alert and a dented health score — while the clean
    // slots stay at 100 with no alerts against them.
    const SICK_SLOT: u32 = 0;
    let config = FleetConfig {
        devices: 4,
        shards: 2,
        passes: 800,
        transport_capacity: 32,
        health: HealthConfig {
            window: 32,
            violation_burst: 1,
            debounce: 1,
            ..HealthConfig::default()
        },
        ..FleetConfig::default()
    };
    let report = run_fleet(&config, move |slot, seq, tx| {
        let mut dev_config = SocDeviceConfig::new(Arc::clone(&program));
        if slot == SICK_SLOT {
            dev_config.faults = Some(FaultConfig::only(FaultClass::DoorbellDrop, 1, 0xD00B));
            dev_config.resilience = Some(ResilienceConfig {
                watchdog_timeout: 200,
                max_attempts: 2,
                backoff: 16,
                policy: FailPolicy::FailClosed,
            });
        }
        Box::new(SocDevice::new(dev_config, tx, seq))
    });

    assert!(
        report.supervision.violations > 0,
        "fail-closed doorbell drops must force violations"
    );
    assert!(!report.alerts.is_empty(), "faulted fleet must page");
    assert!(
        report
            .alerts
            .iter()
            .any(|a| a.kind == AlertKind::ViolationBurst && a.device == Some(SICK_SLOT)),
        "expected a violation burst against slot {SICK_SLOT}: {:?}",
        report.alerts
    );
    assert!(
        report
            .alerts
            .iter()
            .all(|a| { a.device.is_none_or(|d| d == SICK_SLOT) }),
        "no alert may blame a healthy slot: {:?}",
        report.alerts
    );
    assert!(
        report.health_scores[SICK_SLOT as usize] < 100,
        "sick slot's score must drop: {:?}",
        report.health_scores
    );
    validate_prometheus(&report.exposition).expect("exposition parses as Prometheus text");
    assert!(report
        .exposition
        .contains("titancfi_alerts_total{kind=\"violation_burst\""));
}

#[test]
fn single_backend_fleets_are_lossless_on_every_backend() {
    for kind in Backend::ALL {
        let program = Arc::new(call_dense_workload(3));
        let config = FleetConfig {
            devices: 3,
            shards: 2,
            passes: 300,
            transport_capacity: 8,
            backend: Some(kind),
            ..FleetConfig::default()
        };
        let report = run_fleet(&config, move |_, seq, tx| {
            Box::new(SocDevice::new(
                SocDeviceConfig::new(Arc::clone(&program)),
                tx,
                seq,
            ))
        });
        assert!(report.frames_ok > 0, "{kind}: streams");
        assert!(
            report.is_lossless(),
            "{kind}: lost={} corrupt={} undrained={}",
            report.frames_lost,
            report.frames_corrupt,
            report.undrained_devices
        );
        // Every frame went through this backend and no other.
        for (backend, stats) in &report.per_backend {
            if *backend == kind {
                assert_eq!(stats.sent, report.frames_sent, "{kind}");
            } else {
                assert_eq!(stats.sent, 0, "{kind}: {backend} must be unused");
            }
        }
    }
}
