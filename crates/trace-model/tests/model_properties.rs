//! Property tests for the trace-driven queue model, including differential
//! testing against an independent brute-force cycle-stepped simulator.

use titancfi_harness::Xoshiro256;
use titancfi_trace::{service_bound, simulate, Trace};

const CASES: usize = 512;

/// An independent reference implementation: advance cycle by cycle with an
/// explicit queue and writer state. O(total_cycles) — only usable for
/// small cases, which is exactly what differential testing needs.
fn brute_force_stall(trace: &Trace, latency: u64, depth: usize) -> u64 {
    let mut queue: Vec<u64> = Vec::new(); // enqueue times of logs in queue
    let mut writer_busy_until = 0u64; // writer is serving until this cycle
    let mut writer_active = false;
    let mut stall = 0u64;
    let mut now;
    for &base_cycle in &trace.cf_cycles {
        now = base_cycle + stall;
        // Drain writer/queue up to `now`.
        loop {
            if writer_active && writer_busy_until <= now {
                writer_active = false;
            }
            if !writer_active && !queue.is_empty() {
                let head_enq = queue.remove(0);
                let start = head_enq.max(writer_busy_until);
                if start <= now {
                    writer_active = true;
                    writer_busy_until = start + latency;
                    continue;
                }
                // Service would start in the future; put it back.
                queue.insert(0, head_enq);
            }
            break;
        }
        // If the queue is full, the core stalls until the writer pops.
        if queue.len() == depth {
            // Next pop happens when the writer goes idle.
            let idle_at = writer_busy_until.max(now);
            stall += idle_at - now;
            now = idle_at;
            let head_enq = queue.remove(0);
            let start = head_enq.max(writer_busy_until);
            writer_active = true;
            writer_busy_until = start.max(now) + latency;
        }
        queue.push(now);
        // Writer picks it up immediately if idle.
        if !writer_active && queue.len() == 1 {
            writer_active = true;
            writer_busy_until = now.max(writer_busy_until) + latency;
            queue.remove(0);
        }
    }
    stall
}

fn arb_trace(rng: &mut Xoshiro256) -> Trace {
    let n = rng.range_u64(1, 40) as usize;
    let max_gap = rng.range_u64(1, 30);
    let mut cycles = Vec::with_capacity(n);
    let mut t = 0;
    for _ in 0..n {
        t += rng.below(max_gap) + 1;
        cycles.push(t);
    }
    let total = t + 100;
    Trace::from_cf_cycles(cycles, total)
}

/// The closed-form model agrees with the brute-force cycle stepper.
#[test]
fn matches_brute_force() {
    let mut rng = Xoshiro256::new(0x4001);
    for _ in 0..CASES {
        let trace = arb_trace(&mut rng);
        let latency = rng.range_u64(1, 40);
        let depth = rng.range_u64(1, 6) as usize;
        let fast = simulate(&trace, latency, depth).stall_cycles;
        let slow = brute_force_stall(&trace, latency, depth);
        assert_eq!(
            fast, slow,
            "latency {latency} depth {depth} trace {:?}",
            trace.cf_cycles
        );
    }
}

/// Deeper queues never increase stalls.
#[test]
fn monotone_in_depth() {
    let mut rng = Xoshiro256::new(0x4002);
    for _ in 0..CASES {
        let trace = arb_trace(&mut rng);
        let latency = rng.range_u64(1, 60);
        let mut prev = u64::MAX;
        for depth in 1..8 {
            let s = simulate(&trace, latency, depth).stall_cycles;
            assert!(s <= prev, "depth {depth} latency {latency}");
            prev = s;
        }
    }
}

/// Higher check latency never decreases stalls.
#[test]
fn monotone_in_latency() {
    let mut rng = Xoshiro256::new(0x4003);
    for _ in 0..CASES {
        let trace = arb_trace(&mut rng);
        let depth = rng.range_u64(1, 6) as usize;
        let mut prev = 0u64;
        for latency in [1u64, 5, 20, 60, 150] {
            let s = simulate(&trace, latency, depth).stall_cycles;
            assert!(s >= prev, "latency {latency} depth {depth}");
            prev = s;
        }
    }
}

/// The service-rate bound is a true lower bound on the simulated run.
#[test]
fn service_bound_is_lower_bound() {
    let mut rng = Xoshiro256::new(0x4004);
    for _ in 0..CASES {
        let trace = arb_trace(&mut rng);
        let latency = rng.range_u64(1, 80);
        let depth = rng.range_u64(1, 6) as usize;
        let out = simulate(&trace, latency, depth);
        let bound = service_bound(&trace, latency);
        // Compare total runtimes (bound is on the whole run). The host may
        // retire its last instruction while up to `depth + 1` checks are
        // still in flight (queued + being served) — the paper's slowdown is
        // host cycles, so those do not extend the run. Allow that slack.
        let simulated = out.cycles_with_cfi as f64;
        let bound_cycles = trace.total_cycles as f64 * (1.0 + bound);
        let in_flight_slack = ((depth as u64 + 1) * latency) as f64;
        assert!(
            simulated + in_flight_slack >= bound_cycles,
            "simulated {simulated} vs bound {bound_cycles}"
        );
    }
}

/// Time-shifting the whole trace does not change the stall count.
#[test]
fn shift_invariant() {
    let mut rng = Xoshiro256::new(0x4005);
    for _ in 0..CASES {
        let trace = arb_trace(&mut rng);
        let latency = rng.range_u64(1, 40);
        let shift = rng.below(1000);
        let shifted = Trace::from_cf_cycles(
            trace.cf_cycles.iter().map(|c| c + shift).collect(),
            trace.total_cycles + shift,
        );
        assert_eq!(
            simulate(&trace, latency, 2).stall_cycles,
            simulate(&shifted, latency, 2).stall_cycles,
            "shift {shift} latency {latency}"
        );
    }
}

/// With a latency no larger than every gap, even a depth-1 queue never
/// stalls.
#[test]
fn fast_rot_never_stalls() {
    let mut rng = Xoshiro256::new(0x4006);
    for _ in 0..CASES {
        let trace = arb_trace(&mut rng);
        let min_gap = trace
            .cf_cycles
            .windows(2)
            .map(|w| w[1] - w[0])
            .min()
            .unwrap_or(u64::MAX)
            .min(trace.cf_cycles.first().copied().unwrap_or(u64::MAX));
        // arb_trace spaces events by at least 1 cycle.
        assert!(min_gap >= 1);
        let out = simulate(&trace, min_gap.min(50), 1);
        assert_eq!(out.stall_cycles, 0, "min gap {min_gap}");
    }
}
