//! The trace-driven CFI overhead model (paper §V-C).
//!
//! The paper computes slowdown by (1) extracting a cycle-accurate commit
//! trace from RTL simulation and (2) feeding it to a trace-driven model
//! that emulates the CFI check latency. This crate is step (2), exactly:
//!
//! * a [`Trace`] is the list of cycles at which control-flow instructions
//!   retire, plus the baseline total;
//! * [`simulate`] replays the trace against a CFI queue of configurable
//!   depth and a RoT that serves one commit log every `latency` cycles,
//!   stalling the core whenever a control-flow instruction retires into a
//!   full queue — the Queue Controller behaviour of §IV-B2;
//! * [`service_bound`] gives the closed-form lower bound (the RoT is a
//!   rate-1/L server, so a trace with `n` checks can never finish faster
//!   than `n·L` cycles).
//!
//! Table II uses queue depth 1, Table III depth 8, with the three check
//! latencies measured from the firmware (≈267 / 112 / 73 cycles).

pub mod baselines;

use cva6_model::Commit;

/// A commit trace reduced to what the model needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Baseline execution length in cycles (no CFI).
    pub total_cycles: u64,
    /// Commit cycle of every CFI-relevant control-flow instruction,
    /// non-decreasing.
    pub cf_cycles: Vec<u64>,
}

impl Trace {
    /// Builds a trace from a full CVA6 commit stream.
    #[must_use]
    pub fn from_commits(commits: &[Commit], total_cycles: u64) -> Trace {
        let cf_cycles = commits
            .iter()
            .filter(|c| c.cf_class.is_cfi_relevant())
            .map(|c| c.cycle)
            .collect();
        Trace {
            total_cycles,
            cf_cycles,
        }
    }

    /// Builds a trace directly from control-flow commit cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cf_cycles` is not sorted or exceeds `total_cycles`.
    #[must_use]
    pub fn from_cf_cycles(cf_cycles: Vec<u64>, total_cycles: u64) -> Trace {
        assert!(
            cf_cycles.windows(2).all(|w| w[0] <= w[1]),
            "cf cycles must be sorted"
        );
        if let Some(&last) = cf_cycles.last() {
            assert!(last <= total_cycles, "cf cycle beyond end of trace");
        }
        Trace {
            total_cycles,
            cf_cycles,
        }
    }

    /// Number of checked control-flow instructions.
    #[must_use]
    pub fn cf_count(&self) -> usize {
        self.cf_cycles.len()
    }
}

/// Result of replaying a trace through the CFI pipeline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// Cycles with CFI enforcement enabled.
    pub cycles_with_cfi: u64,
    /// Baseline cycles.
    pub cycles_baseline: u64,
    /// Core stall cycles injected by queue back-pressure.
    pub stall_cycles: u64,
    /// Control-flow retirements that hit a full queue and stalled the core
    /// (each contributes ≥1 cycle to [`SimOutcome::stall_cycles`]).
    pub stall_events: u64,
    /// Maximum queue occupancy observed.
    pub max_occupancy: usize,
    /// Slowdown as a fraction (0.10 = +10 %).
    pub slowdown: f64,
}

impl SimOutcome {
    /// Slowdown in percent, the unit of Tables II and III.
    #[must_use]
    pub fn slowdown_percent(&self) -> f64 {
        self.slowdown * 100.0
    }
}

/// Replays `trace` against a CFI queue of `depth` entries and a RoT check
/// latency of `latency` cycles per log.
///
/// The model is exact for the paper's architecture under two observations:
/// the Log Writer pops a log as soon as it is idle, and a control-flow
/// instruction retiring into a full queue stalls the core until the oldest
/// queued log is popped. Service of log *i* therefore starts at
/// `max(enqueue_i, start_{i-1} + latency)`, and the core stalls at log *i*
/// until log *i - depth* has started service.
///
/// # Panics
///
/// Panics if `depth == 0`.
#[must_use]
pub fn simulate(trace: &Trace, latency: u64, depth: usize) -> SimOutcome {
    assert!(depth > 0, "queue depth must be at least 1");
    let n = trace.cf_cycles.len();
    let mut pop = vec![0u64; n]; // service-start (= queue-pop) time of log i
    let mut stall_total = 0u64;
    let mut stall_events = 0u64;
    let mut max_occupancy = 0usize;

    for i in 0..n {
        let mut t = trace.cf_cycles[i] + stall_total;
        // Queue full? Wait for the slot freed by log (i - depth).
        if i >= depth {
            let frees_at = pop[i - depth];
            if frees_at > t {
                stall_total += frees_at - t;
                stall_events += 1;
                t = frees_at;
            }
        }
        // Occupancy right after this enqueue: logs j <= i with pop_j > t.
        let mut occ = 1;
        for j in (0..i).rev() {
            if pop[j] > t {
                occ += 1;
            } else {
                break;
            }
        }
        max_occupancy = max_occupancy.max(occ);
        let prev_end = if i == 0 { 0 } else { pop[i - 1] + latency };
        pop[i] = t.max(prev_end);
    }

    let cycles_with_cfi = trace.total_cycles + stall_total;
    let slowdown = if trace.total_cycles == 0 {
        0.0
    } else {
        stall_total as f64 / trace.total_cycles as f64
    };
    SimOutcome {
        cycles_with_cfi,
        cycles_baseline: trace.total_cycles,
        stall_cycles: stall_total,
        stall_events,
        max_occupancy,
        slowdown,
    }
}

/// The closed-form service-rate lower bound on slowdown: the RoT checks one
/// log per `latency` cycles, so execution takes at least `cf·latency`
/// cycles. Returns the bound as a fraction.
#[must_use]
pub fn service_bound(trace: &Trace, latency: u64) -> f64 {
    if trace.total_cycles == 0 {
        return 0.0;
    }
    let service = trace.cf_count() as u64 * latency;
    if service <= trace.total_cycles {
        0.0
    } else {
        (service - trace.total_cycles) as f64 / trace.total_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_trace(n: u64, gap: u64) -> Trace {
        let cf: Vec<u64> = (1..=n).map(|i| i * gap).collect();
        Trace::from_cf_cycles(cf, n * gap + gap)
    }

    #[test]
    fn sparse_cf_no_overhead() {
        let t = uniform_trace(100, 1000);
        let out = simulate(&t, 100, 1);
        assert_eq!(out.stall_cycles, 0);
        assert_eq!(out.stall_events, 0);
        assert!(out.slowdown.abs() < f64::EPSILON);
        assert_eq!(out.max_occupancy, 1);
    }

    #[test]
    fn stall_events_count_stalling_retirements() {
        // Back-to-back CF at depth 1: every log after the first two queues
        // behind a busy server, so almost all retirements stall.
        let t = uniform_trace(100, 1);
        let out = simulate(&t, 50, 1);
        assert!(out.stall_events > 0);
        assert!(
            out.stall_events <= t.cf_count() as u64,
            "at most one stall event per CF retirement"
        );
        assert!(
            out.stall_cycles >= out.stall_events,
            "each stall event costs at least one cycle"
        );
    }

    #[test]
    fn dense_cf_service_bound_dominates() {
        let t = uniform_trace(1000, 1);
        let out = simulate(&t, 100, 1);
        let bound = service_bound(&t, 100);
        assert!(
            out.slowdown >= bound * 0.95,
            "{} vs bound {}",
            out.slowdown,
            bound
        );
        assert!(
            out.slowdown > 90.0 && out.slowdown < 110.0,
            "{}",
            out.slowdown
        );
    }

    #[test]
    fn deeper_queue_never_hurts() {
        let mut cf = Vec::new();
        for burst in 0..20u64 {
            for i in 0..10u64 {
                cf.push(burst * 5000 + i);
            }
        }
        let t = Trace::from_cf_cycles(cf, 100_000);
        let mut prev = u64::MAX;
        for depth in [1, 2, 4, 8, 16] {
            let out = simulate(&t, 100, depth);
            assert!(
                out.stall_cycles <= prev,
                "depth {depth}: {} > {prev}",
                out.stall_cycles
            );
            prev = out.stall_cycles;
        }
    }

    #[test]
    fn queue_absorbs_bursts_smaller_than_depth() {
        let mut cf = Vec::new();
        for burst in 0..10u64 {
            for i in 0..8u64 {
                cf.push(burst * 10_000 + i);
            }
        }
        let t = Trace::from_cf_cycles(cf, 100_000);
        let out = simulate(&t, 100, 8);
        assert_eq!(out.stall_cycles, 0, "depth-8 queue absorbs 8-bursts");
        let out1 = simulate(&t, 100, 1);
        assert!(out1.stall_cycles > 0, "depth-1 queue cannot");
    }

    #[test]
    fn lower_latency_lower_overhead() {
        let t = uniform_trace(500, 50);
        let irq = simulate(&t, 267, 8);
        let poll = simulate(&t, 112, 8);
        let opt = simulate(&t, 73, 8);
        assert!(irq.stall_cycles >= poll.stall_cycles);
        assert!(poll.stall_cycles >= opt.stall_cycles);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_cf_cycles(vec![], 1000);
        let out = simulate(&t, 267, 1);
        assert_eq!(out.stall_cycles, 0);
        assert_eq!(out.cycles_with_cfi, 1000);
        assert_eq!(service_bound(&t, 267), 0.0);
    }

    #[test]
    fn slowdown_percent_unit() {
        let t = uniform_trace(100, 10);
        let out = simulate(&t, 100, 1);
        assert!((out.slowdown_percent() - out.slowdown * 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        let _ = Trace::from_cf_cycles(vec![5, 3], 10);
    }

    #[test]
    fn from_commits_filters_cf() {
        use riscv_asm::assemble;
        let prog = assemble(
            "_start: call f\ncall f\nebreak\nf: ret\n",
            riscv_isa::Xlen::Rv64,
            0x8000_0000,
        )
        .expect("assembles");
        let mut core =
            cva6_model::Cva6Core::new(&prog, 1 << 16, cva6_model::TimingConfig::default());
        let (commits, _) = core.run(100_000);
        let trace = Trace::from_commits(&commits, core.cycle());
        assert_eq!(trace.cf_count(), 4, "2 calls + 2 returns");
        assert!(trace.total_cycles > 0);
    }
}
