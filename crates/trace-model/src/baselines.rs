//! Models of the state-of-the-art baselines TitanCFI compares against.
//!
//! The paper compares against published numbers (Table II); to make the
//! comparison mechanistic rather than citational, this module models *why*
//! each baseline behaves the way it does:
//!
//! * **DExIE** (hardware monitor, [Spang et al. 2022]): checks every
//!   control-flow instruction in lock-step with tiny latency, but its
//!   enforcement FSMs sit in the core's timing paths and **reduce the
//!   maximum clock frequency** — the paper notes "the authors of [DExIE]
//!   report a reduction in the clock frequency of the tested cores". A
//!   near-constant ~47 % wall-clock overhead across benchmarks is exactly
//!   the signature of a clock-rate effect, which the model reproduces.
//!
//! * **FIXER** (ISA extension, [De et al. 2019]): the compiler inserts
//!   custom shadow-stack opcodes around calls and returns. Checks are
//!   single-cycle (no stall), but every protected edge retires extra
//!   instructions — overhead scales with control-flow *density*, matching
//!   FIXER's reported ~1.5 % aggregate on compute-bound kernels.
//!
//! [Spang et al. 2022]: https://doi.org/10.1007/s11265-021-01732-5
//! [De et al. 2019]: https://doi.org/10.23919/DATE.2019.8714980

use crate::{simulate, Trace};

/// DExIE-style hardware monitor model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DexieModel {
    /// Per-check latency of the enforcement FSM (cycles at the degraded
    /// clock). DExIE checks in lock-step, so this is small.
    pub check_latency: u64,
    /// Clock-frequency degradation factor (baseline f_max / degraded
    /// f_max). The DExIE paper's resource/timing data puts this near 1.47
    /// for the cores it protects.
    pub clock_factor: f64,
}

impl Default for DexieModel {
    fn default() -> DexieModel {
        DexieModel {
            check_latency: 1,
            clock_factor: 1.47,
        }
    }
}

impl DexieModel {
    /// Wall-clock slowdown (percent) on a trace: the queue-model stalls at
    /// the (small) check latency, times the clock degradation applied to
    /// the entire run.
    #[must_use]
    pub fn slowdown_percent(&self, trace: &Trace) -> f64 {
        let stalled = simulate(trace, self.check_latency, 1);
        let cycles = stalled.cycles_with_cfi as f64 * self.clock_factor;
        (cycles / trace.total_cycles as f64 - 1.0) * 100.0
    }
}

/// FIXER-style ISA-extension model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixerModel {
    /// Extra instructions retired per protected control-flow edge (the
    /// inserted custom opcodes plus their operand setup).
    pub extra_instructions_per_edge: f64,
    /// Cycles per extra instruction (they are simple single-cycle ops).
    pub cycles_per_instruction: f64,
}

impl Default for FixerModel {
    fn default() -> FixerModel {
        FixerModel {
            extra_instructions_per_edge: 3.0,
            cycles_per_instruction: 1.0,
        }
    }
}

impl FixerModel {
    /// Slowdown (percent): purely the inline instruction overhead — no
    /// stalls, since the checks run in the pipeline.
    #[must_use]
    pub fn slowdown_percent(&self, trace: &Trace) -> f64 {
        let extra = trace.cf_count() as f64
            * self.extra_instructions_per_edge
            * self.cycles_per_instruction;
        extra * 100.0 / trace.total_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_trace() -> Trace {
        // 15 CF in 2.51M cycles — aha-mont64's published statistics.
        let cf: Vec<u64> = (1..=15u64).map(|i| i * 150_000).collect();
        Trace::from_cf_cycles(cf, 2_510_000)
    }

    fn dense_trace() -> Trace {
        // 22.5k CF in 457k cycles — dhrystone-like.
        let cf: Vec<u64> = (0..22_500u64).map(|i| i * 20).collect();
        Trace::from_cf_cycles(cf, 457_000)
    }

    #[test]
    fn dexie_overhead_is_flat_across_densities() {
        let d = DexieModel::default();
        let sparse = d.slowdown_percent(&sparse_trace());
        let dense = d.slowdown_percent(&dense_trace());
        // Clock degradation dominates: both near 47 %.
        assert!((45.0..50.0).contains(&sparse), "{sparse}");
        assert!((45.0..55.0).contains(&dense), "{dense}");
        assert!((dense - sparse).abs() < 10.0, "flat signature");
    }

    #[test]
    fn fixer_overhead_scales_with_cf_density() {
        let f = FixerModel::default();
        let sparse = f.slowdown_percent(&sparse_trace());
        let dense = f.slowdown_percent(&dense_trace());
        assert!(sparse < 0.1, "compute-bound: ~0 ({sparse})");
        assert!(dense > 5.0, "call-dense: significant ({dense})");
        assert!(dense > 100.0 * sparse);
    }

    #[test]
    fn fixer_aggregate_matches_published_on_riscv_tests_profile() {
        // FIXER reports ~1.5 % aggregate. Its evaluation kernels are
        // compute-bound (rsort/median/qsort/multiply profiles: ~10 CF per
        // hundred-kilocycle run, dhrystone excluded as the outlier).
        let f = FixerModel::default();
        let mut total = 0.0;
        let profiles = [
            (11u64, 332_000u64),
            (11, 25_300),
            (11, 268_000),
            (9, 37_200),
        ];
        for (cf, cycles) in profiles {
            let t =
                Trace::from_cf_cycles((1..=cf).map(|i| i * (cycles / (cf + 1))).collect(), cycles);
            total += f.slowdown_percent(&t);
        }
        let mean = total / 4.0;
        assert!(mean < 1.5, "compute-bound aggregate ~small: {mean:.2}%");
    }

    #[test]
    fn titancfi_beats_dexie_on_sparse_wins_nothing_on_dense() {
        // The paper's Table II story: on compute-bound kernels TitanCFI is
        // near-zero while DExIE pays its flat clock tax; on call-dense
        // kernels TitanCFI's software checks lose.
        let dexie = DexieModel::default();
        let titan_sparse = simulate(&sparse_trace(), 267, 1).slowdown_percent();
        assert!(titan_sparse < 1.0);
        assert!(dexie.slowdown_percent(&sparse_trace()) > 40.0);
        let titan_dense = simulate(&dense_trace(), 267, 1).slowdown_percent();
        assert!(titan_dense > dexie.slowdown_percent(&dense_trace()));
    }
}
