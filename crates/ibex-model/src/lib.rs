//! A cycle-approximate model of the Ibex (RV32IMC) security microcontroller.
//!
//! OpenTitan's Ibex core executes the TitanCFI policy firmware. The paper's
//! Table I depends on Ibex's micro-architectural cost structure: per-region
//! bus latencies (RoT scratchpad vs SoC mailbox), the 45-cycle interrupt
//! wake-up, and the iterative divider. [`IbexCore`] reproduces those on top
//! of the shared architectural interpreter, over a [`SystemBus`] whose
//! regions are latency-annotated and tagged ([`RegionKind`]) so the firmware
//! runner can produce the paper's Logic / Mem-RoT / Mem-SoC breakdown.
//!
//! # Examples
//!
//! ```
//! use ibex_model::{IbexCore, IbexTiming, SystemBus, RegionKind, RegionLatency};
//! use riscv_asm::assemble;
//! use riscv_isa::Xlen;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = assemble("_start: li a0, 5\n ebreak\n", Xlen::Rv32, 0x1_0000)?;
//! let mut bus = SystemBus::new();
//! bus.add_ram(0x1_0000, 0x8000, RegionKind::RotPrivate, RegionLatency::symmetric(5));
//! bus.load(prog.base, &prog.bytes);
//! let mut core = IbexCore::new(bus, prog.entry, IbexTiming::default());
//! let commit = core.step().map_err(|e| format!("{e:?}"))?;
//! assert_eq!(core.hart.reg(riscv_isa::Reg::A0), 5);
//! assert_eq!(commit.cost, 1); // single-cycle ALU op
//! # Ok(())
//! # }
//! ```

mod bus;
mod core;

pub use crate::bus::{AccessInfo, Device, RegionKind, RegionLatency, SystemBus};
pub use crate::core::{IbexCommit, IbexCore, IbexEvent, IbexState, IbexTiming};
