//! The Ibex system bus: latency-annotated regions and memory-mapped devices.
//!
//! The OpenTitan analysis in the paper (Table I) splits firmware memory
//! accesses into **RoT-private** (the 128 KB scratchpad behind OpenTitan's
//! internal TileLink fabric, ≈5 cycles per access) and **SoC** (the CFI
//! mailbox and main memory reached through the TileLink-to-AXI bridge,
//! ≈12 cycles). The bus model tags every access with its region kind so the
//! firmware runner can reproduce that breakdown, and charges the region's
//! latency to the core's cycle count.

use riscv_isa::{Bus, MemFault, MemWidth};
use std::fmt;

/// Classification of a bus region, mirroring the paper's cost split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// OpenTitan-private scratchpad SRAM (and ROM/flash): cheap, tamper-proof.
    RotPrivate,
    /// Anything reached through the TileLink-to-AXI bridge: the CFI mailbox,
    /// SCMI mailbox, and SoC main memory.
    Soc,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionKind::RotPrivate => f.write_str("rot-private"),
            RegionKind::Soc => f.write_str("soc"),
        }
    }
}

/// Latency (cycles) charged per access to a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionLatency {
    /// Cycles per read.
    pub read: u64,
    /// Cycles per write.
    pub write: u64,
}

impl RegionLatency {
    /// Same latency for reads and writes.
    #[must_use]
    pub fn symmetric(cycles: u64) -> RegionLatency {
        RegionLatency {
            read: cycles,
            write: cycles,
        }
    }
}

/// A memory-mapped device (mailbox registers, interrupt controller, ...).
///
/// Offsets are relative to the device's base address. Devices are registered
/// on the bus with a region kind and latency like RAM regions.
///
/// `Send` is part of the contract so a whole simulated SoC can move between
/// threads — fleet shards hand devices to whichever worker steals them. The
/// existing implementations all qualify (plain state or `Arc<Mutex<_>>`).
pub trait Device: Send {
    /// Reads `width` bytes at `offset`.
    fn read(&mut self, offset: u64, width: MemWidth) -> u64;

    /// Writes the low `width` bytes of `value` at `offset`.
    fn write(&mut self, offset: u64, width: MemWidth, value: u64);
}

enum Backing {
    Ram(Vec<u8>),
    Dev(Box<dyn Device>),
}

impl fmt::Debug for Backing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backing::Ram(v) => write!(f, "Ram({} bytes)", v.len()),
            Backing::Dev(_) => f.write_str("Device"),
        }
    }
}

#[derive(Debug)]
struct Region {
    base: u64,
    size: u64,
    kind: RegionKind,
    latency: RegionLatency,
    backing: Backing,
}

/// Record of the most recent access, consumed by the timing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessInfo {
    /// Region kind touched.
    pub kind: RegionKind,
    /// Latency charged.
    pub cycles: u64,
    /// Whether it was a write.
    pub store: bool,
}

/// A bus with latency-annotated RAM regions and devices.
#[derive(Debug, Default)]
pub struct SystemBus {
    regions: Vec<Region>,
    last_access: Option<AccessInfo>,
    /// Single-entry dispatch memo: index of the region that served the last
    /// access. Firmware locality makes consecutive accesses hit the same
    /// region almost always, turning the per-access range scan into one
    /// bounds check. Region indices are stable (regions are only appended).
    last_hit: Option<usize>,
}

impl SystemBus {
    /// An empty bus.
    #[must_use]
    pub fn new() -> SystemBus {
        SystemBus::default()
    }

    /// Maps a zero-filled RAM region.
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps an existing one.
    pub fn add_ram(&mut self, base: u64, size: u64, kind: RegionKind, latency: RegionLatency) {
        self.check_overlap(base, size);
        self.regions.push(Region {
            base,
            size,
            kind,
            latency,
            backing: Backing::Ram(vec![0; size as usize]),
        });
    }

    /// Maps a device.
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps an existing one.
    pub fn add_device(
        &mut self,
        base: u64,
        size: u64,
        kind: RegionKind,
        latency: RegionLatency,
        device: Box<dyn Device>,
    ) {
        self.check_overlap(base, size);
        self.regions.push(Region {
            base,
            size,
            kind,
            latency,
            backing: Backing::Dev(device),
        });
    }

    fn check_overlap(&self, base: u64, size: u64) {
        for r in &self.regions {
            assert!(
                base + size <= r.base || base >= r.base + r.size,
                "region [{base:#x}, {:#x}) overlaps [{:#x}, {:#x})",
                base + size,
                r.base,
                r.base + r.size
            );
        }
    }

    /// Copies bytes into a RAM region (program loading).
    ///
    /// # Panics
    ///
    /// Panics if the range is not fully inside one RAM region.
    pub fn load(&mut self, addr: u64, bytes: &[u8]) {
        let region = self
            .regions
            .iter_mut()
            .find(|r| addr >= r.base && addr + bytes.len() as u64 <= r.base + r.size)
            .expect("load target not mapped");
        match &mut region.backing {
            Backing::Ram(data) => {
                let off = (addr - region.base) as usize;
                data[off..off + bytes.len()].copy_from_slice(bytes);
            }
            Backing::Dev(_) => panic!("cannot load into a device region"),
        }
    }

    /// Takes the access-info record of the most recent read/write.
    pub fn take_access(&mut self) -> Option<AccessInfo> {
        self.last_access.take()
    }

    /// Mutable access to a registered device, downcast by the caller.
    ///
    /// Returns `None` if `base` does not name a device region.
    pub fn device_at(&mut self, base: u64) -> Option<&mut (dyn Device + '_)> {
        for r in &mut self.regions {
            if r.base == base {
                return match &mut r.backing {
                    Backing::Dev(d) => Some(&mut **d),
                    Backing::Ram(_) => None,
                };
            }
        }
        None
    }

    #[inline]
    fn region_for(&mut self, addr: u64, len: u64) -> Option<&mut Region> {
        if let Some(i) = self.last_hit {
            let r = &self.regions[i];
            if addr >= r.base && addr + len <= r.base + r.size {
                return Some(&mut self.regions[i]);
            }
        }
        let i = self
            .regions
            .iter()
            .position(|r| addr >= r.base && addr + len <= r.base + r.size)?;
        self.last_hit = Some(i);
        Some(&mut self.regions[i])
    }
}

impl Bus for SystemBus {
    fn read(&mut self, addr: u64, width: MemWidth) -> Result<u64, MemFault> {
        let n = width.bytes();
        let region = self
            .region_for(addr, n)
            .ok_or(MemFault { addr, store: false })?;
        let info = AccessInfo {
            kind: region.kind,
            cycles: region.latency.read,
            store: false,
        };
        let off = addr - region.base;
        let v = match &mut region.backing {
            Backing::Ram(data) => {
                let off = off as usize;
                let mut v = 0u64;
                for i in (0..n as usize).rev() {
                    v = v << 8 | u64::from(data[off + i]);
                }
                v
            }
            Backing::Dev(d) => d.read(off, width),
        };
        self.last_access = Some(info);
        Ok(v)
    }

    fn write(&mut self, addr: u64, width: MemWidth, value: u64) -> Result<(), MemFault> {
        let n = width.bytes();
        let region = self
            .region_for(addr, n)
            .ok_or(MemFault { addr, store: true })?;
        let info = AccessInfo {
            kind: region.kind,
            cycles: region.latency.write,
            store: true,
        };
        let off = addr - region.base;
        match &mut region.backing {
            Backing::Ram(data) => {
                let off = off as usize;
                for i in 0..n as usize {
                    data[off + i] = (value >> (8 * i)) as u8;
                }
            }
            Backing::Dev(d) => d.write(off, width, value),
        }
        self.last_access = Some(info);
        Ok(())
    }

    fn fetch(&mut self, addr: u64) -> Result<u32, MemFault> {
        // Instruction fetches hit the private ROM/SRAM; they are pipelined
        // and not charged as data accesses, so bypass the access record.
        let remaining = {
            let r = self
                .region_for(addr, 1)
                .ok_or(MemFault { addr, store: false })?;
            r.base + r.size - addr
        };
        let n = 4.min(remaining);
        let mut v: u64 = 0;
        for i in (0..n).rev() {
            let region = self
                .region_for(addr + i, 1)
                .ok_or(MemFault { addr, store: false })?;
            let off = addr + i - region.base;
            let byte = match &mut region.backing {
                Backing::Ram(data) => u64::from(data[off as usize]),
                Backing::Dev(d) => d.read(off, MemWidth::B),
            };
            v = v << 8 | byte;
        }
        self.last_access = None;
        Ok(v as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        last: u64,
    }

    impl Device for Probe {
        fn read(&mut self, offset: u64, _width: MemWidth) -> u64 {
            offset + 0x100
        }
        fn write(&mut self, _offset: u64, _width: MemWidth, value: u64) {
            self.last = value;
        }
    }

    #[test]
    fn ram_read_write_with_latency_tag() {
        let mut bus = SystemBus::new();
        bus.add_ram(
            0x1000,
            0x100,
            RegionKind::RotPrivate,
            RegionLatency::symmetric(5),
        );
        bus.write(0x1008, MemWidth::W, 0xaabbccdd).expect("write");
        let info = bus.take_access().expect("tagged");
        assert_eq!(info.kind, RegionKind::RotPrivate);
        assert_eq!(info.cycles, 5);
        assert!(info.store);
        assert_eq!(bus.read(0x1008, MemWidth::W).expect("read"), 0xaabb_ccdd);
    }

    #[test]
    fn device_dispatch() {
        let mut bus = SystemBus::new();
        bus.add_device(
            0x2000,
            0x40,
            RegionKind::Soc,
            RegionLatency::symmetric(12),
            Box::new(Probe { last: 0 }),
        );
        assert_eq!(bus.read(0x2004, MemWidth::W).expect("read"), 0x104);
        assert_eq!(bus.take_access().expect("tag").kind, RegionKind::Soc);
        bus.write(0x2000, MemWidth::W, 7).expect("write");
        // Downcast-free check via behaviour: writes recorded in device.
        assert!(bus.device_at(0x2000).is_some());
    }

    #[test]
    fn last_hit_memo_tracks_alternating_regions() {
        let mut bus = SystemBus::new();
        bus.add_ram(
            0x1000,
            0x100,
            RegionKind::RotPrivate,
            RegionLatency::symmetric(5),
        );
        bus.add_ram(0x2000, 0x100, RegionKind::Soc, RegionLatency::symmetric(12));
        // Ping-pong between regions: every access must resolve to the right
        // region (latency tag) and value, memo notwithstanding.
        for round in 0..4u64 {
            bus.write(0x1008, MemWidth::W, round).expect("rot write");
            assert_eq!(bus.take_access().expect("tag").cycles, 5);
            bus.write(0x2008, MemWidth::W, round + 100)
                .expect("soc write");
            assert_eq!(bus.take_access().expect("tag").cycles, 12);
            assert_eq!(bus.read(0x1008, MemWidth::W).expect("read"), round);
            assert_eq!(bus.take_access().expect("tag").kind, RegionKind::RotPrivate);
            assert_eq!(bus.read(0x2008, MemWidth::W).expect("read"), round + 100);
            assert_eq!(bus.take_access().expect("tag").kind, RegionKind::Soc);
        }
        // Unmapped accesses still fault after the memo is warm.
        assert!(bus.read(0x5000, MemWidth::W).is_err());
    }

    #[test]
    fn unmapped_access_faults() {
        let mut bus = SystemBus::new();
        bus.add_ram(
            0x1000,
            0x100,
            RegionKind::RotPrivate,
            RegionLatency::symmetric(1),
        );
        assert!(bus.read(0x5000, MemWidth::W).is_err());
        assert!(
            bus.write(0x10fe, MemWidth::W, 0).is_err(),
            "straddles region end"
        );
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_regions_rejected() {
        let mut bus = SystemBus::new();
        bus.add_ram(
            0x1000,
            0x100,
            RegionKind::RotPrivate,
            RegionLatency::symmetric(1),
        );
        bus.add_ram(0x10f0, 0x100, RegionKind::Soc, RegionLatency::symmetric(1));
    }

    #[test]
    fn fetch_spans_regions() {
        let mut bus = SystemBus::new();
        bus.add_ram(
            0x1000,
            0x100,
            RegionKind::RotPrivate,
            RegionLatency::symmetric(1),
        );
        bus.load(0x1000, &[0x13, 0x05, 0x10, 0x00]);
        assert_eq!(bus.fetch(0x1000).expect("fetch"), 0x0010_0513);
        // Fetch at the very end of the region reads the remaining bytes.
        bus.load(0x10fe, &[0x82, 0x80]);
        assert_eq!(bus.fetch(0x10fe).expect("fetch"), 0x8082);
    }
}
