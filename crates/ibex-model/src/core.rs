//! The Ibex core model: RV32IMC execution with OpenTitan-like timing.
//!
//! Ibex is a 2-stage in-order microcontroller. The paper's Table I analysis
//! hinges on three timing properties the model reproduces:
//!
//! * data accesses pay the *bus latency of the region they touch* (RoT
//!   scratchpad ≈5 cycles, SoC/mailbox ≈12 cycles in the baseline
//!   OpenTitan; 1 and 8 in the "Optimized" interconnect variant),
//! * waking from `wfi` on an interrupt costs a fixed wake-up latency
//!   (45 cycles measured by the paper's RTL simulation),
//! * taken branches/jumps cost an extra fetch bubble, divides are iterative.

use crate::bus::{AccessInfo, RegionKind, SystemBus};
use riscv_isa::{
    classify, decode, predecode, BlockCache, BlockCacheStats, CfClass, DecodeCache,
    DecodeCacheStats, Hart, Inst, MulOp, Retired, Trap, Xlen,
};
use titancfi_obs::{Probe, RetireSample};

/// Ibex timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbexTiming {
    /// Cycles from doorbell interrupt assertion to the first handler
    /// instruction (paper §V-B: 45 cycles).
    pub irq_wake_latency: u64,
    /// Extra cycles for a taken branch or jump (refetch).
    pub taken_bubble: u64,
    /// Extra cycles for a divide/remainder.
    pub div_extra: u64,
}

impl Default for IbexTiming {
    fn default() -> IbexTiming {
        IbexTiming {
            irq_wake_latency: 45,
            taken_bubble: 1,
            div_extra: 37,
        }
    }
}

/// One retired Ibex instruction with its timing/annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbexCommit {
    /// Cycle at which the instruction completed.
    pub cycle: u64,
    /// Architectural retirement record.
    pub retired: Retired,
    /// Cycles this instruction took.
    pub cost: u64,
    /// Region kind of the data access, when the instruction was a
    /// load/store — this drives the paper's Mem-RoT vs Mem-SoC split.
    pub mem_kind: Option<RegionKind>,
    /// CFI classification (for completeness; rarely needed on Ibex).
    pub cf_class: CfClass,
}

/// Execution state of the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IbexState {
    /// Fetching and executing.
    Running,
    /// Parked on `wfi` waiting for an interrupt.
    Sleeping,
}

/// Why a step could not retire an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IbexEvent {
    /// The core is asleep and no interrupt is pending.
    Asleep,
    /// Trap raised by the program.
    Trapped(Trap),
}

/// The Ibex core over a [`SystemBus`].
#[derive(Debug)]
pub struct IbexCore {
    /// Architectural hart (public for firmware runners to inspect).
    pub hart: Hart,
    /// The system bus (public so embedders can reach devices).
    pub bus: SystemBus,
    timing: IbexTiming,
    cycle: u64,
    state: IbexState,
    /// Count of interrupts taken.
    pub irqs_taken: u64,
    /// Predecoded instruction cache (fast path; architecturally invisible).
    decode_cache: DecodeCache,
    predecode: bool,
    /// Superblock translation cache (block dispatch; architecturally
    /// invisible, keyed on the decode cache's invalidation generation).
    block_cache: BlockCache,
}

/// Result of dispatching one translated superblock via
/// [`IbexCore::step_block`]. All but the final instruction are plain
/// straight-line commits: non-CFI-relevant, RoT-private (no SoC-visible
/// access), non-redirecting, below the cycle bound, with no interrupt
/// becoming deliverable — exactly what per-instruction stepping would have
/// retired without the embedder reacting.
#[derive(Debug, Clone, Copy)]
pub struct IbexBlockStep {
    /// Instructions retired before the final one.
    pub straightline: u64,
    /// The final retired commit, or the event that ended execution.
    pub result: Result<IbexCommit, IbexEvent>,
}

impl IbexCore {
    /// A core starting at `entry` over `bus`.
    #[must_use]
    pub fn new(bus: SystemBus, entry: u64, timing: IbexTiming) -> IbexCore {
        IbexCore {
            hart: Hart::new(Xlen::Rv32, entry),
            bus,
            timing,
            cycle: 0,
            state: IbexState::Running,
            irqs_taken: 0,
            decode_cache: DecodeCache::default(),
            predecode: predecode::fast_path_default(),
            block_cache: BlockCache::default(),
        }
    }

    /// Enables or disables the predecoded-instruction fast path. Disabling
    /// (or re-enabling) drops all cached entries; both settings retire the
    /// exact same architectural and cycle-level stream.
    pub fn set_predecode(&mut self, enabled: bool) {
        self.predecode = enabled;
        self.decode_cache.invalidate_all();
    }

    /// Replaces the decode and block caches with freshly-sized ones
    /// (rounded up to powers of two, min 16 each). The defaults cover
    /// kernel-sized firmware; embedders simulating many RoTs at once
    /// right-size down to the firmware actually booted. Architecturally
    /// invisible — entries re-predecode on demand.
    pub fn resize_caches(&mut self, decode_slots: usize, block_slots: usize) {
        self.decode_cache = DecodeCache::new(decode_slots);
        self.block_cache = BlockCache::new(block_slots);
    }

    /// Whether the predecode fast path is active.
    #[must_use]
    pub fn predecode_enabled(&self) -> bool {
        self.predecode
    }

    /// Drops every predecoded entry. Required after mutating instruction
    /// memory behind the hart's back (e.g. loading an image through
    /// `self.bus` directly); stores executed by the hart are tracked
    /// automatically.
    pub fn invalidate_decode_cache(&mut self) {
        self.decode_cache.invalidate_all();
    }

    /// Hit/miss/eviction counters of the predecode cache.
    #[must_use]
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        self.decode_cache.stats()
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether the core is parked on `wfi`.
    #[must_use]
    pub fn state(&self) -> IbexState {
        self.state
    }

    /// Raises (or clears) an interrupt-pending bit in `mip`.
    pub fn set_irq(&mut self, mip_bit: u64, level: bool) {
        if level {
            self.hart.csrs.mip |= mip_bit;
        } else {
            self.hart.csrs.mip &= !mip_bit;
        }
    }

    /// Advances the core's notion of time without executing (used when the
    /// core is slaved to an SoC-level clock).
    pub fn advance_to(&mut self, cycle: u64) {
        self.cycle = self.cycle.max(cycle);
    }

    /// Executes one instruction (or takes a pending interrupt / wakes up).
    ///
    /// # Errors
    ///
    /// Returns [`IbexEvent::Asleep`] when parked with no pending interrupt,
    /// or [`IbexEvent::Trapped`] when the program traps.
    pub fn step(&mut self) -> Result<IbexCommit, IbexEvent> {
        // Wake / interrupt entry.
        if self.state == IbexState::Sleeping {
            if self.hart.csrs.mip & self.hart.csrs.mie == 0 {
                return Err(IbexEvent::Asleep);
            }
            // WFI wakes regardless of mstatus.MIE; the handler is entered
            // only if interrupts are enabled (the firmware always runs with
            // them enabled while sleeping).
            self.cycle += self.timing.irq_wake_latency;
            self.state = IbexState::Running;
            if self.hart.take_interrupt().is_some() {
                self.irqs_taken += 1;
            }
        } else if self.hart.take_interrupt().is_some() {
            self.irqs_taken += 1;
            // Pipeline redirect into the handler.
            self.cycle += self.timing.taken_bubble;
        }

        let step_result = if self.predecode {
            self.hart
                .step_predecoded(&mut self.bus, &mut self.decode_cache)
        } else {
            self.hart
                .step(&mut self.bus)
                .map(|r| (r, classify(&r.decoded.inst)))
        };
        let (retired, cf_class) = match step_result {
            Ok(rc) => rc,
            Err(trap) => {
                // A trapped instruction charges nothing; drop any partial
                // access record so it cannot leak into a later retirement.
                self.bus.take_access();
                return Err(IbexEvent::Trapped(trap));
            }
        };
        let access = self.bus.take_access();
        Ok(self.finish_commit(retired, cf_class, access))
    }

    /// Applies the Ibex timing model to one retired instruction — the
    /// commit half of [`IbexCore::step`], shared with block dispatch so
    /// both paths produce bit-identical commit streams.
    fn finish_commit(
        &mut self,
        retired: Retired,
        cf_class: CfClass,
        access: Option<AccessInfo>,
    ) -> IbexCommit {
        let mut cost = 1;
        if let Some(info) = access {
            cost += info.cycles;
        }
        if let Inst::Mul { op, .. } = retired.decoded.inst {
            if matches!(op, MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu) {
                cost += self.timing.div_extra;
            }
        }
        if retired.redirected() {
            cost += self.timing.taken_bubble;
        }
        if retired.wfi {
            self.state = IbexState::Sleeping;
        }

        self.cycle += cost;
        self.hart.csrs.mcycle = self.cycle;
        IbexCommit {
            cycle: self.cycle,
            retired,
            cost,
            mem_kind: access.map(|a| a.kind),
            cf_class,
        }
    }

    /// Translates the superblock starting at `entry`: a straight-line run
    /// of predecoded ops ending at (and including) the first control-flow
    /// instruction, capped at [`BlockCache::MAX_BLOCK_OPS`]. Lookahead
    /// fetches go through [`SystemBus::fetch`], which is side-effect-free
    /// on RAM and leaves no access record; a fetch that faults or fails to
    /// decode simply ends the block there.
    fn translate_block(&mut self, entry: u64, generation: u64) -> (u32, u32) {
        let start = self.block_cache.begin();
        let mut pc = entry;
        for _ in 0..BlockCache::MAX_BLOCK_OPS {
            let op = match self.decode_cache.lookup(pc) {
                Some(op) => op,
                None => {
                    let Ok(word) = riscv_isa::Bus::fetch(&mut self.bus, pc) else {
                        break;
                    };
                    let Ok(decoded) = decode(word, self.hart.xlen) else {
                        break;
                    };
                    self.decode_cache.insert(pc, decoded)
                }
            };
            self.block_cache.push(op);
            if op.cf_class != CfClass::None {
                break;
            }
            pc = pc.wrapping_add(u64::from(op.decoded.len));
        }
        self.block_cache.finish(entry, generation, start)
    }

    /// Dispatches one translated superblock: retires instructions from the
    /// block arena until something the embedder could react to happens — a
    /// CFI-relevant commit, an SoC-visible (mailbox/SCMI) access, `wfi`, an
    /// interrupt becoming deliverable, the `until` cycle bound, a trap — or
    /// the block ends internally (redirecting op, self-modifying store,
    /// block cap). Behaviourally identical to calling [`IbexCore::step`]
    /// `straightline + 1` times.
    pub fn step_block(&mut self, until: u64) -> IbexBlockStep {
        // Wake-up, interrupt entry, and undecodable entry words all go
        // through the plain path, which already handles them.
        if self.state == IbexState::Sleeping || self.hart.interrupt_ready() {
            return IbexBlockStep {
                straightline: 0,
                result: self.step(),
            };
        }
        let generation = self.decode_cache.generation();
        let entry = self.hart.pc;
        let (start, len) = match self.block_cache.lookup(entry, generation) {
            Some(span) => span,
            None => self.translate_block(entry, generation),
        };
        if len == 0 {
            return IbexBlockStep {
                straightline: 0,
                result: self.step(),
            };
        }
        for i in start..start + len {
            // Ops before `i` all retired without stopping the block.
            let straightline = u64::from(i - start);
            let op = self.block_cache.op(i);
            let retired = match self.hart.execute(&mut self.bus, op.decoded) {
                Ok(r) => r,
                Err(trap) => {
                    // Mirror `step`: a trapped instruction charges nothing
                    // and must not leak a partial access record.
                    self.bus.take_access();
                    return IbexBlockStep {
                        straightline,
                        result: Err(IbexEvent::Trapped(trap)),
                    };
                }
            };
            if op.store_bytes != 0 {
                if let Some(addr) = retired.mem_addr {
                    self.decode_cache
                        .invalidate_store(addr, u64::from(op.store_bytes));
                }
            }
            let access = self.bus.take_access();
            let commit = self.finish_commit(retired, op.cf_class, access);
            let last_in_block = i + 1 == start + len;
            if last_in_block
                || commit.cf_class.is_cfi_relevant()
                || commit.mem_kind == Some(RegionKind::Soc)
                || commit.retired.wfi
                || commit.cycle >= until
                || commit.retired.redirected()
                || self.hart.interrupt_ready()
                || self.decode_cache.generation() != generation
            {
                return IbexBlockStep {
                    straightline,
                    result: Ok(commit),
                };
            }
        }
        unreachable!("block dispatch always returns at the final op");
    }

    /// Hit/miss/install counters of the superblock cache.
    #[must_use]
    pub fn block_cache_stats(&self) -> BlockCacheStats {
        self.block_cache.stats()
    }

    /// Like [`IbexCore::step`], but reports the retirement to `probe` —
    /// this is what feeds the exact firmware profiler in `titancfi-obs`.
    ///
    /// # Errors
    ///
    /// Same as [`IbexCore::step`].
    pub fn step_probed(&mut self, probe: &mut dyn Probe) -> Result<IbexCommit, IbexEvent> {
        let commit = self.step()?;
        if probe.enabled() {
            probe.retire(RetireSample {
                pc: commit.retired.pc,
                cost: commit.cost,
                cycle: commit.cycle,
                is_call: commit.cf_class == CfClass::Call,
                is_ret: commit.cf_class == CfClass::Return,
                target: commit.retired.target,
            });
        }
        Ok(commit)
    }

    /// Runs until the core goes to sleep, traps, or `max_cycles` elapse.
    ///
    /// Returns the retired instructions of this burst and the stopping event.
    #[must_use]
    pub fn run_until_idle(&mut self, max_cycles: u64) -> (Vec<IbexCommit>, Option<IbexEvent>) {
        let mut burst = Vec::new();
        while self.cycle < max_cycles {
            match self.step() {
                Ok(c) => {
                    let went_to_sleep = c.retired.wfi;
                    burst.push(c);
                    if went_to_sleep {
                        return (burst, Some(IbexEvent::Asleep));
                    }
                }
                Err(e) => return (burst, Some(e)),
            }
        }
        (burst, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{RegionKind, RegionLatency};
    use riscv_asm::assemble;
    use riscv_isa::{csr, Reg};

    fn system(src: &str) -> IbexCore {
        let prog = assemble(src, Xlen::Rv32, 0x10000).expect("assembles");
        let mut bus = SystemBus::new();
        bus.add_ram(
            0x10000,
            0x10000,
            RegionKind::RotPrivate,
            RegionLatency::symmetric(5),
        );
        bus.add_ram(
            0x8000_0000,
            0x10000,
            RegionKind::Soc,
            RegionLatency::symmetric(12),
        );
        bus.load(prog.base, &prog.bytes);
        let mut core = IbexCore::new(bus, prog.entry, IbexTiming::default());
        core.hart.set_reg(Reg::SP, 0x1fff0);
        core
    }

    #[test]
    fn rot_access_cheaper_than_soc_access() {
        let mut core = system(
            r"
            _start:
                li t0, 0x10800
                lw a0, 0(t0)        # RoT private: 5-cycle region
                li t1, 0x80000000
                lw a1, 0(t1)        # SoC: 12-cycle region
                ebreak
            ",
        );
        let mut costs = Vec::new();
        let mut kinds = Vec::new();
        loop {
            match core.step() {
                Ok(c) => {
                    if let Some(kind) = c.mem_kind {
                        costs.push(c.cost);
                        kinds.push(kind);
                    }
                }
                Err(IbexEvent::Trapped(Trap::Breakpoint)) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(kinds, vec![RegionKind::RotPrivate, RegionKind::Soc]);
        assert_eq!(costs[0], 1 + 5);
        assert_eq!(costs[1], 1 + 12);
    }

    #[test]
    fn wfi_sleep_and_irq_wake_costs_latency() {
        let mut core = system(
            r"
            _start:
                la t0, handler
                csrw mtvec, t0
                li t0, 0x800        # MIE.MEIE
                csrw mie, t0
                csrsi mstatus, 8    # MSTATUS.MIE
                wfi
                ebreak
            handler:
                li a0, 42
                mret
            ",
        );
        // Run to sleep.
        let (_, ev) = core.run_until_idle(100_000);
        assert_eq!(ev, Some(IbexEvent::Asleep));
        assert_eq!(core.state(), IbexState::Sleeping);
        let asleep_at = core.cycle();
        // No interrupt: still asleep.
        assert_eq!(core.step().unwrap_err(), IbexEvent::Asleep);
        // Post the external interrupt.
        core.set_irq(csr::MIX_MEIP, true);
        let first = core.step().expect("handler first inst");
        assert!(
            first.cycle >= asleep_at + IbexTiming::default().irq_wake_latency,
            "wake latency must be charged: {} vs {}",
            first.cycle,
            asleep_at
        );
        assert_eq!(core.irqs_taken, 1);
        // Handler runs li then mret, returning to the wfi's successor.
        let _li_done = first;
        let mret = core.step().expect("mret");
        assert_eq!(mret.retired.decoded.inst, Inst::Mret);
        assert_eq!(core.hart.reg(Reg::A0), 42);
        core.set_irq(csr::MIX_MEIP, false);
        // Falls through to ebreak.
        loop {
            match core.step() {
                Ok(_) => {}
                Err(IbexEvent::Trapped(Trap::Breakpoint)) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
    }

    #[test]
    fn divide_is_iterative() {
        let mut core = system("_start: li a0, 100\nli a1, 7\ndiv a2, a0, a1\nebreak\n");
        let mut div_cost = 0;
        loop {
            match core.step() {
                Ok(c) => {
                    if matches!(c.retired.decoded.inst, Inst::Mul { .. }) {
                        div_cost = c.cost;
                    }
                }
                Err(IbexEvent::Trapped(Trap::Breakpoint)) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(div_cost > 30, "divide should be iterative, got {div_cost}");
        assert_eq!(core.hart.reg(Reg::A2), 14);
    }

    #[test]
    fn step_probed_attributes_every_cycle() {
        let mut core = system(
            r"
            _start:
                jal ra, leaf
                ebreak
            leaf:
                li a0, 7
                ret
            ",
        );
        let mut symbols = std::collections::BTreeMap::new();
        symbols.insert("_start".to_string(), 0x10000);
        let mut rec = titancfi_obs::Recorder::new().with_profiler(&symbols);
        let mut cycles = 0;
        loop {
            match core.step_probed(&mut rec) {
                Ok(c) => cycles += c.cost,
                Err(IbexEvent::Trapped(Trap::Breakpoint)) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        let profiler = rec.profiler.as_ref().expect("profiler attached");
        assert_eq!(profiler.total_cycles(), cycles);
        assert!(profiler.total_insts() >= 3, "jal + li + ret must retire");
    }

    #[test]
    fn block_dispatch_matches_strict_stepping() {
        let src = r"
            _start:
                li a0, 10
                li a1, 0
            loop:
                add a1, a1, a0
                addi a0, a0, -1
                li t0, 0x10800
                lw t1, 0(t0)        # RoT-private access: stays in-block
                li t2, 0x80000000
                lw t3, 0(t2)        # SoC access: must end the block
                bnez a0, loop
                call f
                ebreak
            f:  ret
            ";
        let mut strict = system(src);
        strict.set_predecode(true);
        let mut block = system(src);
        block.set_predecode(true);

        let mut strict_commits = Vec::new();
        let strict_end = loop {
            match strict.step() {
                Ok(c) => strict_commits.push(c),
                Err(e) => break e,
            }
        };
        let mut n_block_commits = 0u64;
        let block_end = loop {
            let bs = block.step_block(u64::MAX);
            n_block_commits += bs.straightline;
            match bs.result {
                Ok(c) => {
                    // The terminal commit must be bit-identical to the
                    // strict commit at the same position.
                    assert_eq!(strict_commits[n_block_commits as usize], c);
                    n_block_commits += 1;
                }
                Err(e) => break e,
            }
        };
        assert_eq!(strict_end, block_end);
        assert_eq!(n_block_commits as usize, strict_commits.len());
        assert_eq!(strict.cycle(), block.cycle());
        assert_eq!(strict.hart.reg(Reg::A1), block.hart.reg(Reg::A1));
        assert!(block.block_cache_stats().hits > 0, "loop re-enters blocks");
    }

    #[test]
    fn block_dispatch_ends_at_soc_access_and_wfi() {
        let mut core = system(
            r"
            _start:
                li t1, 0x80000000
                lw a1, 0(t1)
                nop
                wfi
                ebreak
            ",
        );
        core.set_predecode(true);
        let bs = core.step_block(u64::MAX); // li (no access yet)... block runs until SoC lw
        let first = bs.result.expect("commit");
        assert_eq!(
            first.mem_kind,
            Some(RegionKind::Soc),
            "block must end at the SoC-visible access"
        );
        let bs = core.step_block(u64::MAX);
        let second = bs.result.expect("commit");
        assert!(second.retired.wfi, "block must end at wfi");
        assert_eq!(core.state(), IbexState::Sleeping);
    }

    #[test]
    fn block_dispatch_honours_interrupt_between_blocks() {
        let mut core = system(
            r"
            _start:
                la t0, handler
                csrw mtvec, t0
                li t0, 0x800
                csrw mie, t0
                csrsi mstatus, 8
            spin:
                nop
                j spin
            handler:
                li a0, 42
                ebreak
            ",
        );
        core.set_predecode(true);
        // Run a few blocks of the spin loop, then post the interrupt.
        for _ in 0..4 {
            let _ = core.step_block(u64::MAX);
        }
        core.set_irq(csr::MIX_MEIP, true);
        let end = loop {
            match core.step_block(u64::MAX).result {
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert_eq!(end, IbexEvent::Trapped(Trap::Breakpoint));
        assert_eq!(core.hart.reg(Reg::A0), 42);
        assert_eq!(core.irqs_taken, 1);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut core = system("_start: ebreak\n");
        core.advance_to(100);
        assert_eq!(core.cycle(), 100);
        core.advance_to(50);
        assert_eq!(core.cycle(), 100);
    }
}
