//! Property tests for the policy suite over generated commit streams.
//!
//! The streams are derived cheaply: the generated program runs on a bare
//! RV64 hart and the CFI filter selects the relevant retirements — the
//! exact stream the SoC produces (the differential oracle proves that
//! byte-identity elsewhere), without booting 200 full co-simulations.

use riscv_isa::Trap;
use titancfi::{CfiFilter, CommitLog};
use titancfi_fuzz::gen::{FUZZ_BASE, FUZZ_MEM};
use titancfi_fuzz::oracle::assemble_fuzz;
use titancfi_fuzz::{CorruptionVariant, FuzzProgram};
use titancfi_policies::{
    CfiPolicy, CombinedPolicy, KcfiPolicy, LandingPadPolicy, ShadowStackPolicy,
};

/// Seeds the properties sweep. Each seed contributes one program: benign,
/// or carrying the corruption variant the seed's residue selects.
const SEEDS: std::ops::Range<u64> = 0..200;

/// Renders the program for `seed`: every fourth is benign, the rest cycle
/// through the corruption variants so violating streams are well covered.
fn program_for(seed: u64) -> FuzzProgram {
    let benign = FuzzProgram::generate(seed);
    match seed % 4 {
        0 => benign,
        r => benign.with_corruption_variant(CorruptionVariant::ALL[(r - 1) as usize]),
    }
}

/// The commit-log stream of a program on a bare hart, via the CFI filter.
fn derive_stream(prog: &FuzzProgram) -> (riscv_asm::Program, Vec<CommitLog>) {
    let image = assemble_fuzz(&prog.emit(), prog.compressed)
        .unwrap_or_else(|e| panic!("seed {}: does not assemble: {e}", prog.seed));
    let mut mem = riscv_isa::FlatMemory::new(FUZZ_BASE, FUZZ_MEM);
    mem.load(image.base, &image.bytes);
    let mut hart = riscv_isa::Hart::new(riscv_isa::Xlen::Rv64, image.entry);
    // Stack at the top of RAM, ABI-aligned — the same reset state the
    // CVA6 core model establishes.
    hart.set_reg(
        riscv_isa::Reg::SP,
        (FUZZ_BASE + FUZZ_MEM as u64 - 16) & !0xf,
    );
    let mut filter = CfiFilter::new();
    let mut stream = Vec::new();
    let mut steps = 0u64;
    loop {
        match hart.step(&mut mem) {
            Ok(r) => {
                if let Some(log) = filter.scan(&r) {
                    stream.push(log);
                }
            }
            Err(Trap::Breakpoint) => break,
            Err(t) => panic!("seed {}: unexpected trap {t:?}", prog.seed),
        }
        steps += 1;
        assert!(steps < 2_000_000, "seed {}: did not terminate", prog.seed);
    }
    (image, stream)
}

/// **Property:** per log, the combined policy's verdict is the OR of its
/// members' verdicts — composing policies never invents or swallows a
/// violation. Holds across 200 seeds spanning benign programs and all
/// three corruption variants.
#[test]
fn combined_verdict_is_the_or_of_member_verdicts() {
    let mut streams = 0usize;
    let mut flagged_logs = 0usize;
    for seed in SEEDS {
        let prog = program_for(seed);
        let (image, stream) = derive_stream(&prog);

        let mut ss = ShadowStackPolicy::new(1024);
        let mut lp = LandingPadPolicy::from_program(&image);
        let mut kcfi = KcfiPolicy::from_program(&image);
        let mut combined = CombinedPolicy::new()
            .with(ShadowStackPolicy::new(1024))
            .with(LandingPadPolicy::from_program(&image))
            .with(KcfiPolicy::from_program(&image));

        for (i, log) in stream.iter().enumerate() {
            let members_flag = !ss.check(log).is_allowed()
                | !lp.check(log).is_allowed()
                | !kcfi.check(log).is_allowed();
            let combined_flags = !combined.check(log).is_allowed();
            assert_eq!(
                combined_flags, members_flag,
                "seed {seed} log {i} ({log:?}): combined verdict is not the member OR"
            );
            flagged_logs += usize::from(combined_flags);
        }
        streams += 1;
    }
    assert_eq!(streams, SEEDS.end as usize);
    assert!(
        flagged_logs > 0,
        "no corrupted seed produced a violating log — the property was vacuous"
    );
}

/// **Property:** the member policies' statistics sum exactly over a
/// stream: every forward edge is either checked by the landing-pad policy
/// or invisible to it, instrumented-site counts match the program's CFI
/// metadata, and violation counters equal the per-log verdict counts.
#[test]
fn policy_stats_sum_exactly_over_the_stream() {
    for seed in (0..64u64).map(|s| s * 3) {
        let prog = program_for(seed);
        let (image, stream) = derive_stream(&prog);

        let mut ss = ShadowStackPolicy::new(1024);
        let mut lp = LandingPadPolicy::from_program(&image);
        let mut kcfi = KcfiPolicy::from_program(&image);
        let (mut v_ss, mut v_lp, mut v_kcfi) = (0u64, 0u64, 0u64);
        for log in &stream {
            v_ss += u64::from(!ss.check(log).is_allowed());
            v_lp += u64::from(!lp.check(log).is_allowed());
            v_kcfi += u64::from(!kcfi.check(log).is_allowed());
        }

        // Recount the stream's edge classes independently of the policies.
        let jalr_edges = stream
            .iter()
            .filter(|l| {
                l.insn & 0x7f == 0x67
                    && matches!(
                        l.cf_class(),
                        riscv_isa::CfClass::Call | riscv_isa::CfClass::IndirectJump
                    )
            })
            .count() as u64;
        let instrumented = stream
            .iter()
            .filter(|l| image.cfi.site_hashes.contains_key(&l.pc))
            .count() as u64;
        let backward = stream
            .iter()
            .filter(|l| {
                matches!(
                    l.cf_class(),
                    riscv_isa::CfClass::Call | riscv_isa::CfClass::Return
                )
            })
            .count() as u64;

        assert_eq!(
            lp.stats().checked,
            jalr_edges,
            "seed {seed}: landing-pad checked-count drifted from the stream's jalr edges"
        );
        assert_eq!(kcfi.stats().checked, instrumented, "seed {seed}");
        assert_eq!(lp.stats().violations, v_lp, "seed {seed}");
        assert_eq!(kcfi.stats().violations, v_kcfi, "seed {seed}");
        let s = ss.stats();
        assert_eq!(
            s.pushes + s.pops,
            backward,
            "seed {seed}: shadow-stack pushes+pops must equal the stream's calls+returns"
        );
        assert!(
            v_ss <= s.pops,
            "seed {seed}: more return violations than pops"
        );
    }
}
