//! Tier-1 smoke for the differential fuzzing subsystem: a handful of seeds
//! through the full matrix, corruption detection, determinism, and a
//! shrinker sanity pass. The broad seed sweep lives in
//! `titancfi-bench --bin fuzz`; this keeps `cargo test` fast.

use titancfi_fuzz::{check, instruction_count, FuzzProgram, MatrixConfig};

/// Seeds covered by the in-tree smoke (the bench binary sweeps hundreds).
const SMOKE_SEEDS: std::ops::Range<u64> = 0..8;

#[test]
fn benign_seeds_agree_across_the_matrix() {
    let matrix = MatrixConfig::default();
    for seed in SMOKE_SEEDS {
        let prog = FuzzProgram::generate(seed);
        let ok = check(&prog, &matrix).unwrap_or_else(|d| panic!("seed {seed} diverged: {d}"));
        assert_eq!(ok.violations, 0, "seed {seed}: benign program flagged");
        assert_eq!(
            ok.reference.halt, "Breakpoint",
            "seed {seed}: program must terminate via ebreak"
        );
        assert!(
            ok.reference.filter.emitted > 0,
            "seed {seed}: program streamed no control flow"
        );
    }
}

#[test]
fn corruption_fires_in_every_configuration() {
    let matrix = MatrixConfig::default();
    for seed in 0..4u64 {
        let prog = FuzzProgram::generate(seed).with_corruption();
        let ok =
            check(&prog, &matrix).unwrap_or_else(|d| panic!("corrupted seed {seed} diverged: {d}"));
        assert!(
            ok.violations >= 1,
            "seed {seed}: return hijack must raise a shadow-stack violation"
        );
        assert_eq!(
            ok.reference.halt, "Breakpoint",
            "seed {seed}: corrupted program still terminates"
        );
    }
}

#[test]
fn generation_is_deterministic() {
    for seed in SMOKE_SEEDS {
        let a = FuzzProgram::generate(seed);
        let b = FuzzProgram::generate(seed);
        assert_eq!(a, b, "seed {seed}: AST must be reproducible");
        assert_eq!(a.emit(), b.emit(), "seed {seed}: rendering must be stable");
    }
}

#[test]
fn seeds_produce_distinct_programs() {
    let sources: Vec<String> = (0..8).map(|s| FuzzProgram::generate(s).emit()).collect();
    for i in 0..sources.len() {
        for j in i + 1..sources.len() {
            assert_ne!(sources[i], sources[j], "seeds {i} and {j} collided");
        }
    }
}

#[test]
fn generator_exercises_every_construct() {
    // Across the smoke seed range the grammar's interesting productions
    // must all appear at least once — a canary against silent generator
    // regressions that would hollow out the differential coverage.
    let mut saw = (false, false, false, false); // (table, recursion, indirect, loop)
    for seed in 0..64u64 {
        let src = FuzzProgram::generate(seed).emit();
        saw.0 |= src.contains("jt_");
        saw.1 |= src.contains("blez a0");
        saw.2 |= src.contains("jalr t1");
        saw.3 |= src.contains("lp_");
    }
    assert!(saw.0, "no seed generated a jump table");
    assert!(saw.1, "no seed generated bounded recursion");
    assert!(saw.2, "no seed generated an indirect call");
    assert!(saw.3, "no seed generated a counted loop");
}

#[test]
fn shrinker_is_identity_on_passing_programs() {
    let matrix = MatrixConfig::default();
    let prog = FuzzProgram::generate(1);
    let shrunk = titancfi_fuzz::shrink(&prog, &matrix);
    assert_eq!(
        shrunk, prog,
        "a non-diverging program must come back intact"
    );
}

#[test]
fn instruction_count_ignores_labels_directives_comments() {
    let n = instruction_count("# c\nf0:\n    addi s1, s1, 1\n.align 3\n    .dword f0\n\n    ret\n");
    assert_eq!(n, 2);
}
