//! Mutation test for the differential oracle: arm the deliberately planted
//! decode-cache bug (`invalidate_store` silently skipping eviction) and
//! prove the fuzzer (a) catches it, (b) shrinks it to a small reproducer,
//! and (c) writes a self-contained repro file.
//!
//! The hook is process-global, so this file contains exactly one test and
//! lives in its own integration-test binary (its own process) — it must
//! never share a process with other simulator tests.

use titancfi_fuzz::{
    check, instruction_count, shrink, write_repro, FuzzProgram, GenOptions, MatrixConfig,
    ReproContext,
};

/// Seeds probed for an armed-hook divergence. Self-modifying programs are
/// forced by `GenOptions`, but the patched call still has to execute on a
/// path where the stale decode changes the jump-table arm, so a few seeds
/// may be needed.
const PROBE_SEEDS: std::ops::Range<u64> = 0..32;

#[test]
fn planted_decode_cache_bug_is_caught_and_shrunk() {
    let matrix = MatrixConfig::default();
    let opts = GenOptions {
        force_self_modify: true,
    };

    riscv_isa::predecode::set_mutate_skip_store_invalidation(true);
    let found = PROBE_SEEDS.clone().find_map(|seed| {
        let prog = FuzzProgram::generate_opts(seed, opts);
        check(&prog, &matrix).err().map(|d| (seed, prog, d))
    });
    let (seed, prog, _divergence) = found.unwrap_or_else(|| {
        riscv_isa::predecode::set_mutate_skip_store_invalidation(false);
        panic!("no probe seed exposed the armed decode-cache bug")
    });

    let shrunk = shrink(&prog, &matrix);
    let shrunk_divergence = check(&shrunk, &matrix).expect_err("shrunk program still diverges");
    let count = instruction_count(&shrunk.emit());

    let repro_dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("repros");
    let path = write_repro(
        &repro_dir,
        &shrunk,
        &ReproContext {
            seed,
            divergence: &shrunk_divergence,
            mutation_hook: true,
        },
    )
    .expect("repro file writes");

    riscv_isa::predecode::set_mutate_skip_store_invalidation(false);

    // The bound allows for the CFI instrumentation the generator now plants
    // everywhere: one `lpad` per function entry and per jump-table arm.
    assert!(
        count <= 40,
        "shrunk reproducer has {count} instruction statements (> 40):\n{}",
        shrunk.emit()
    );
    let written = std::fs::read_to_string(&path).expect("repro file readable");
    assert!(written.contains("set_mutate_skip_store_invalidation(true)"));
    assert!(written.contains("check_source"));
    assert!(
        written.contains(&format!("Seed: {seed}")),
        "repro header names the seed"
    );

    // Disarmed, the very same programs must sail through the matrix — the
    // divergence is the mutation, not the generator.
    check(&prog, &matrix).expect("disarmed original passes");
    check(&shrunk, &matrix).expect("disarmed shrunk program passes");
}
