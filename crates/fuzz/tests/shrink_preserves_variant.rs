//! The shrinker must not shrink away the planted corruption.
//!
//! A corrupted program fails the oracle *by design* (the expected-detection
//! assertions), so a shrink candidate that deleted the corruption — or the
//! structure it needs (the smashed jump table, the confused call site and
//! its two callees) — would still "diverge" and be kept, leaving a
//! reproducer that exercises a different policy than the original. These
//! tests pin the anchor-preservation fix: after maximal shrinking, the
//! corruption variant and its structural anchors survive, and the shrunk
//! program still trips exactly the predicted policy.

use titancfi_fuzz::gen::Op;
use titancfi_fuzz::{
    check, expected_detection, shrink, Corruption, CorruptionVariant, FuzzProgram, MatrixConfig,
};

/// Dual-core replay adds nothing to the policy dimension; skipping it
/// keeps each shrink candidate's oracle run cheap enough for tier-1.
fn matrix() -> MatrixConfig {
    MatrixConfig {
        multicore: false,
        ..MatrixConfig::default()
    }
}

/// The structural anchors a shrunk corrupted program must still carry.
fn assert_anchors(prog: &FuzzProgram, original: CorruptionVariant) {
    match prog.corruption.expect("corruption survives shrinking") {
        Corruption::ReturnHijack { func } => {
            assert_eq!(original, CorruptionVariant::ReturnHijack);
            assert!(func < prog.funcs.len(), "hijacked function was removed");
        }
        Corruption::JumpTableSmash { func } => {
            assert_eq!(original, CorruptionVariant::JumpTableSmash);
            let f = prog.funcs.get(func).expect("smashed function exists");
            assert!(
                f.body.iter().any(|op| matches!(op, Op::TableSwitch { .. })),
                "the smashed jump table was removed"
            );
        }
        Corruption::FnPtrTypeConfusion { func, from, to } => {
            assert_eq!(original, CorruptionVariant::FnPtrTypeConfusion);
            assert!(from < prog.funcs.len() && to < prog.funcs.len());
            assert_ne!(
                prog.type_class(from),
                prog.type_class(to),
                "the swapped callees no longer have distinct type classes"
            );
            let f = prog.funcs.get(func).expect("confused function exists");
            assert!(
                f.body
                    .iter()
                    .any(|op| matches!(op, Op::IndirectCall { callee } if *callee == from)),
                "the confused indirect call was removed or simplified away"
            );
        }
    }
}

#[test]
fn shrinking_preserves_the_corruption_variant() {
    let matrix = matrix();
    for variant in CorruptionVariant::ALL {
        let prog = FuzzProgram::generate(3).with_corruption_variant(variant);
        let divergence = check(&prog, &matrix);
        assert!(
            divergence.is_ok(),
            "{variant:?}: the corrupted program must pass its own expected-detection check"
        );

        // Arm an artificial divergence driver: a budget so small every run
        // "diverges", giving the shrinker maximal freedom to delete — the
        // regime where an unprotected anchor would be shredded first.
        let tiny = MatrixConfig {
            budget: 1,
            ..matrix
        };
        let shrunk = shrink(&prog, &tiny);
        assert_anchors(&shrunk, variant);

        // Under the real matrix the shrunk program must still be the same
        // attack: caught by exactly the predicted policy.
        let ok = check(&shrunk, &matrix)
            .unwrap_or_else(|d| panic!("{variant:?}: shrunk program broke the oracle: {d}"));
        let want = expected_detection(&shrunk.corruption.expect("still corrupted"));
        assert_eq!(ok.policy.shadow_stack > 0, want.shadow_stack, "{variant:?}");
        assert_eq!(ok.policy.landing_pad > 0, want.landing_pad, "{variant:?}");
        assert_eq!(ok.policy.kcfi > 0, want.kcfi, "{variant:?}");
    }
}

#[test]
fn function_removal_never_drops_an_anchor() {
    // White-box check of the removal pass's index remapping: deleting a
    // non-anchor function shifts the corruption indices down together, so
    // the confused callees stay consecutive (distinct type parity).
    let prog =
        FuzzProgram::generate(5).with_corruption_variant(CorruptionVariant::FnPtrTypeConfusion);
    let Some(Corruption::FnPtrTypeConfusion { from, to, .. }) = prog.corruption else {
        panic!("expected a type confusion");
    };
    assert_eq!(to, from + 1, "the generator appends consecutive callees");
    assert_ne!(prog.type_class(from), prog.type_class(to));
}
