//! Cross-configuration differential oracle.
//!
//! One generated program is run under the full configuration matrix:
//!
//! * **Execution strategy** — strict per-cycle stepping, predecoded
//!   instruction caches without batching, the fast-forward path
//!   (predecode with quantum batching), and block-compiled dispatch
//!   (superblock translation cache + event-driven background scheduling).
//!   All four must agree on *everything*, including cycle counts.
//! * **Firmware** — IRQ vs polling RoT firmware. Check latencies differ,
//!   so only the timing-independent ("portable") fingerprint must agree:
//!   halt reason, retired instruction count, filter counters, the full
//!   commit-log byte stream, verdicts, and the final checksum.
//! * **Resilience** — the armed default vs [`ResilienceConfig::off`]. On a
//!   fault-free transport the layer must be provably inert: the *entire*
//!   report, cycles included, must be identical.
//! * **Topology** — the dual-core SoC running the same program on both
//!   cores, strict vs fast path. Both cores' tagged streams must equal the
//!   single-core strict stream log for log.
//!
//! Corruption variants invert the final check along the **policy
//! dimension**: the reference stream is replayed through the golden-model
//! shadow-stack, landing-pad, and KCFI policies, and each variant must be
//! flagged by exactly the policies the expected-detection map predicts
//! (`ReturnHijack` → shadow stack, `JumpTableSmash` → landing pads,
//! `FnPtrTypeConfusion` → KCFI), in every configuration.

use crate::gen::{Corruption, FuzzProgram, FUZZ_BASE, FUZZ_MEM};
use cva6_model::Halt;
use riscv_asm::{AsmError, Assembler, Program};
use riscv_isa::{Reg, Xlen};
use titancfi::firmware::FirmwareKind;
use titancfi::{CommitLog, FilterStats, ResilienceConfig};
use titancfi_policies::{
    CfiPolicy, CombinedPolicy, KcfiPolicy, LandingPadPolicy, ShadowStackPolicy,
};
use titancfi_soc::{DualHostSoc, SocConfig, SystemOnChip, CORES};

/// Single-core execution strategy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Reference semantics: per-cycle stepping, raw decode.
    Strict,
    /// Predecoded instruction caches, no quantum batching.
    Predecode,
    /// Predecode + quantum-batched stepping (`SocConfig::fast_path`).
    FastForward,
    /// Fast forward plus the superblock translation cache and event-driven
    /// background scheduling (`SocConfig::block_compile`).
    BlockCompiled,
}

impl ExecMode {
    /// All four rungs, reference first.
    pub const ALL: [ExecMode; 4] = [
        ExecMode::Strict,
        ExecMode::Predecode,
        ExecMode::FastForward,
        ExecMode::BlockCompiled,
    ];
}

/// The oracle's run matrix parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixConfig {
    /// Host cycle budget per run (generated programs finish far below it).
    pub budget: u64,
    /// Also run the dual-core SoC (strict vs fast + single-core cross
    /// check).
    pub multicore: bool,
}

impl Default for MatrixConfig {
    fn default() -> MatrixConfig {
        MatrixConfig {
            budget: 4_000_000,
            multicore: true,
        }
    }
}

/// Everything observable from one single-core run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseOutcome {
    /// Configuration label (for divergence messages).
    pub label: String,
    /// Why the host stopped (`Debug`-rendered, `Halt` is not `Eq`).
    pub halt: String,
    /// Total cycles including CFI stalls.
    pub cycles: u64,
    /// Instructions retired.
    pub instret: u64,
    /// CFI filter counters.
    pub filter: FilterStats,
    /// Logs fully checked by the RoT.
    pub logs_checked: u64,
    /// The commit-log stream pushed into the CFI queue, in order.
    pub stream: Vec<CommitLog>,
    /// Logs the RoT flagged (violation verdicts), in order.
    pub violation_logs: Vec<CommitLog>,
    /// Resilience counters (must stay zero on a clean transport).
    pub watchdog_timeouts: u64,
    /// Logs dropped under fail-open escalation.
    pub logs_dropped: u64,
    /// Final checksum (`a0` at `ebreak`).
    pub checksum: u64,
}

impl CaseOutcome {
    /// The 28-byte-per-log wire rendering of the commit stream — the
    /// "byte-identical streams" the oracle compares, in the shared
    /// [`titancfi::wire`] layout every transport speaks.
    #[must_use]
    pub fn stream_bytes(&self) -> Vec<u8> {
        titancfi::wire::stream_bytes(&self.stream)
    }

    /// Timing-independent fingerprint: agrees across firmware variants.
    #[must_use]
    pub fn portable_fingerprint(&self) -> String {
        format!(
            "halt={} instret={} filter={:?} checked={} stream={} violations={:?} wd={} dropped={} a0={:#x}",
            self.halt,
            self.instret,
            self.filter,
            self.logs_checked,
            hex(&self.stream_bytes()),
            self.violation_logs,
            self.watchdog_timeouts,
            self.logs_dropped,
            self.checksum,
        )
    }

    /// Full fingerprint: portable plus cycle-exact timing. Agrees across
    /// execution strategies and across the resilience on/off pair.
    #[must_use]
    pub fn full_fingerprint(&self) -> String {
        format!("{} cycles={}", self.portable_fingerprint(), self.cycles)
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// A divergence found by the oracle — two configurations disagreed, or the
/// policy expectation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// What disagreed with what, and how.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

/// Violation counts from replaying the reference commit stream through each
/// golden-model policy — the oracle's policy dimension. The streams were
/// already proven byte-identical across every configuration, so one replay
/// speaks for all of them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyMatrix {
    /// Shadow-stack (backward-edge) violations.
    pub shadow_stack: u64,
    /// Landing-pad (Zicfilp forward-edge) violations.
    pub landing_pad: u64,
    /// KCFI (type-hash forward-edge) violations.
    pub kcfi: u64,
    /// Violations under the three policies combined (first-wins).
    pub combined: u64,
}

/// Which policies the detection map predicts fire for a corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedDetection {
    /// The shadow stack must flag it.
    pub shadow_stack: bool,
    /// The landing-pad policy must flag it.
    pub landing_pad: bool,
    /// The KCFI policy must flag it.
    pub kcfi: bool,
}

/// The per-policy expected-detection map: exactly one golden policy catches
/// each corruption variant, and the others must stay silent — the
/// catch/miss matrix the forward-edge suite is built around.
#[must_use]
pub fn expected_detection(corruption: &Corruption) -> ExpectedDetection {
    match corruption {
        Corruption::ReturnHijack { .. } => ExpectedDetection {
            shadow_stack: true,
            landing_pad: false,
            kcfi: false,
        },
        Corruption::JumpTableSmash { .. } => ExpectedDetection {
            shadow_stack: false,
            landing_pad: true,
            kcfi: false,
        },
        Corruption::FnPtrTypeConfusion { .. } => ExpectedDetection {
            shadow_stack: false,
            landing_pad: false,
            kcfi: true,
        },
    }
}

/// Replays a commit stream through the three golden-model policies (and
/// their combination), counting violations per policy.
#[must_use]
pub fn replay_policies(prog: &Program, stream: &[CommitLog]) -> PolicyMatrix {
    let mut ss = ShadowStackPolicy::new(1024);
    let mut lp = LandingPadPolicy::from_program(prog);
    let mut kcfi = KcfiPolicy::from_program(prog);
    let mut matrix = PolicyMatrix::default();
    for log in stream {
        if !ss.check(log).is_allowed() {
            matrix.shadow_stack += 1;
        }
        if !lp.check(log).is_allowed() {
            matrix.landing_pad += 1;
        }
        if !kcfi.check(log).is_allowed() {
            matrix.kcfi += 1;
        }
    }
    let mut combined = CombinedPolicy::new()
        .with(ShadowStackPolicy::new(1024))
        .with(LandingPadPolicy::from_program(prog))
        .with(KcfiPolicy::from_program(prog));
    for log in stream {
        if !combined.check(log).is_allowed() {
            matrix.combined += 1;
        }
    }
    matrix
}

/// Successful oracle verdict plus observations the caller may assert on.
#[derive(Debug, Clone)]
pub struct OracleOk {
    /// Outcome of the reference case (strict, polling, resilience armed).
    pub reference: CaseOutcome,
    /// Total violations observed in the reference case.
    pub violations: usize,
    /// Per-policy violation counts from the golden-model replay of the
    /// reference stream.
    pub policy: PolicyMatrix,
}

/// Assembles a generated program's source.
///
/// # Errors
///
/// Returns the assembler diagnostic when the source does not assemble —
/// always a generator bug, surfaced as data so fuzz jobs report it.
pub fn assemble_fuzz(source: &str, compressed: bool) -> Result<Program, AsmError> {
    let asm = Assembler::new(Xlen::Rv64, FUZZ_BASE);
    let asm = if compressed { asm.compressed() } else { asm };
    asm.assemble(source)
}

fn soc_config(fw: FirmwareKind, resilience: ResilienceConfig, mode: ExecMode) -> SocConfig {
    SocConfig {
        firmware: fw,
        mem_size: FUZZ_MEM,
        resilience,
        fast_path: matches!(mode, ExecMode::FastForward | ExecMode::BlockCompiled),
        block_compile: matches!(mode, ExecMode::BlockCompiled),
        ..SocConfig::default()
    }
}

fn run_single(
    prog: &Program,
    fw: FirmwareKind,
    resilience: ResilienceConfig,
    mode: ExecMode,
    budget: u64,
) -> CaseOutcome {
    let mut soc = SystemOnChip::new(prog, soc_config(fw, resilience, mode));
    soc.set_predecode(!matches!(mode, ExecMode::Strict));
    soc.enable_log_tap();
    let report = soc.run(budget);
    let stream = soc.take_log_tap().expect("tap was enabled");
    CaseOutcome {
        label: format!(
            "{mode:?}/{fw:?}/{}",
            if resilience == ResilienceConfig::off() {
                "res-off"
            } else {
                "res-armed"
            }
        ),
        halt: format!("{:?}", report.halt),
        cycles: report.cycles,
        instret: report.core.instret,
        filter: report.filter,
        logs_checked: report.logs_checked,
        stream,
        violation_logs: report.violations.iter().map(|v| v.log).collect(),
        watchdog_timeouts: report.watchdog_timeouts,
        logs_dropped: report.logs_dropped,
        checksum: soc.host_reg(Reg::A0),
    }
}

/// Observations from one dual-core run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DualOutcome {
    label: String,
    halts: [String; CORES],
    cycles: [u64; CORES],
    cf_streamed: [u64; CORES],
    logs_checked: u64,
    per_core_streams: [Vec<CommitLog>; CORES],
    per_core_violations: [Vec<CommitLog>; CORES],
}

/// Dual-core stepping rung: strict, quantum-batched, or block-compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DualMode {
    Strict,
    Fast,
    Block,
}

fn run_dual(prog: &Program, mode: DualMode, budget: u64) -> DualOutcome {
    let mut soc = DualHostSoc::new([prog, prog], FUZZ_MEM, 8);
    match mode {
        DualMode::Strict => soc.set_predecode_only(false),
        DualMode::Fast => {
            soc.set_fast_path(true);
            soc.set_block_compile(false);
        }
        DualMode::Block => {
            soc.set_fast_path(true);
            soc.set_block_compile(true);
        }
    }
    soc.enable_log_tap();
    let report = soc.run(budget);
    let tagged = soc.take_log_tap().expect("tap was enabled");
    let mut streams: [Vec<CommitLog>; CORES] = [Vec::new(), Vec::new()];
    for t in &tagged {
        streams[t.core as usize].push(t.log);
    }
    let mut violations: [Vec<CommitLog>; CORES] = [Vec::new(), Vec::new()];
    for v in &report.violations {
        violations[v.core as usize].push(v.log);
    }
    DualOutcome {
        label: format!(
            "dual/{}",
            match mode {
                DualMode::Strict => "strict",
                DualMode::Fast => "fast",
                DualMode::Block => "block",
            }
        ),
        halts: [0, 1].map(|i| format!("{:?}", report.cores[i].halt)),
        cycles: [0, 1].map(|i| report.cores[i].cycles),
        cf_streamed: [0, 1].map(|i| report.cores[i].cf_streamed),
        logs_checked: report.logs_checked,
        per_core_streams: streams,
        per_core_violations: violations,
    }
}

fn diverge(detail: String) -> Divergence {
    Divergence { detail }
}

fn compare_streams(a: &CaseOutcome, b: &CaseOutcome) -> Result<(), Divergence> {
    if a.stream == b.stream {
        return Ok(());
    }
    let idx = a
        .stream
        .iter()
        .zip(&b.stream)
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.stream.len().min(b.stream.len()));
    Err(diverge(format!(
        "commit streams differ between [{}] ({} logs) and [{}] ({} logs) at index {}: {:?} vs {:?}",
        a.label,
        a.stream.len(),
        b.label,
        b.stream.len(),
        idx,
        a.stream.get(idx),
        b.stream.get(idx),
    )))
}

/// Runs the full matrix over already-assembled source and checks every
/// cross-configuration equality. This is the replayable core used by
/// written reproducers; policy expectations (corruption must fire) live in
/// [`check`].
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_source(
    source: &str,
    compressed: bool,
    matrix: &MatrixConfig,
) -> Result<OracleOk, Divergence> {
    let prog = assemble_fuzz(source, compressed)
        .map_err(|e| diverge(format!("generator bug: source does not assemble: {e}")))?;

    let firmwares = [FirmwareKind::Polling, FirmwareKind::Irq];
    let resiliences = [ResilienceConfig::default(), ResilienceConfig::off()];
    let mut cases: Vec<CaseOutcome> = Vec::new();
    for fw in firmwares {
        for res in resiliences {
            for mode in ExecMode::ALL {
                cases.push(run_single(&prog, fw, res, mode, matrix.budget));
            }
        }
    }
    let reference = cases[0].clone();
    if reference.halt == format!("{:?}", Halt::Budget) {
        return Err(diverge(format!(
            "generator bug: [{}] exhausted the {}-cycle budget (program must self-terminate)",
            reference.label, matrix.budget
        )));
    }

    // Within one (firmware, resilience) cell the three execution strategies
    // must agree on everything, cycles included.
    for cell in cases.chunks(ExecMode::ALL.len()) {
        let base = &cell[0];
        for other in &cell[1..] {
            compare_streams(base, other)?;
            if base.full_fingerprint() != other.full_fingerprint() {
                return Err(diverge(format!(
                    "full fingerprints differ between [{}] and [{}]:\n  {}\n  {}",
                    base.label,
                    other.label,
                    base.full_fingerprint(),
                    other.full_fingerprint()
                )));
            }
        }
    }
    // Resilience armed vs off must be fully inert per firmware (compare the
    // strict rung of each pair; the rungs were just proven identical).
    let per_res = ExecMode::ALL.len();
    for fw_block in cases.chunks(2 * per_res) {
        let armed = &fw_block[0];
        let off = &fw_block[per_res];
        if armed.full_fingerprint() != off.full_fingerprint() {
            return Err(diverge(format!(
                "resilience layer is not inert: [{}] vs [{}]:\n  {}\n  {}",
                armed.label,
                off.label,
                armed.full_fingerprint(),
                off.full_fingerprint()
            )));
        }
    }
    // Across firmwares the portable fingerprint must agree.
    let irq_ref = &cases[2 * per_res];
    compare_streams(&reference, irq_ref)?;
    if reference.portable_fingerprint() != irq_ref.portable_fingerprint() {
        return Err(diverge(format!(
            "portable fingerprints differ between [{}] and [{}]:\n  {}\n  {}",
            reference.label,
            irq_ref.label,
            reference.portable_fingerprint(),
            irq_ref.portable_fingerprint()
        )));
    }

    // Fleet-ingest cell: the reference commit stream routed through every
    // fleet transport backend (with real backpressure — the pump's ring is
    // smaller than the stream) must reassemble byte-identically to the
    // direct log tap. This pins the wire layer the fleet service ships
    // against the same oracle that pins the simulator.
    for backend in titancfi_fleet::Backend::ALL {
        let reassembled = titancfi_fleet::transport::ingest_roundtrip(backend, &reference.stream)
            .map_err(|e| diverge(format!("fleet ingest [{backend}]: {e}")))?;
        if titancfi::wire::stream_bytes(&reassembled) != reference.stream_bytes() {
            return Err(diverge(format!(
                "fleet ingest [{backend}]: reassembled stream ({} logs) is not byte-identical \
                 to the direct tap ({} logs)",
                reassembled.len(),
                reference.stream.len()
            )));
        }
    }

    if matrix.multicore {
        let strict = run_dual(&prog, DualMode::Strict, matrix.budget);
        for mode in [DualMode::Fast, DualMode::Block] {
            let other = run_dual(&prog, mode, matrix.budget);
            let mut relabel = other.clone();
            relabel.label = strict.label.clone();
            if strict != relabel {
                return Err(diverge(format!(
                    "dual-core strict vs {} diverge:\n  {strict:?}\n  {other:?}",
                    other.label
                )));
            }
        }
        for core in 0..CORES {
            if strict.per_core_streams[core] != reference.stream {
                let idx = strict.per_core_streams[core]
                    .iter()
                    .zip(&reference.stream)
                    .position(|(x, y)| x != y)
                    .unwrap_or_else(|| {
                        strict.per_core_streams[core]
                            .len()
                            .min(reference.stream.len())
                    });
                return Err(diverge(format!(
                    "dual-core core {core} stream ({} logs) differs from single-core strict ({} logs) at index {idx}",
                    strict.per_core_streams[core].len(),
                    reference.stream.len(),
                )));
            }
            if strict.per_core_violations[core] != reference.violation_logs {
                return Err(diverge(format!(
                    "dual-core core {core} violations {:?} differ from single-core {:?}",
                    strict.per_core_violations[core], reference.violation_logs
                )));
            }
            if strict.cf_streamed[core] != reference.filter.emitted {
                return Err(diverge(format!(
                    "dual-core core {core} cf_streamed {} != single-core emitted {}",
                    strict.cf_streamed[core], reference.filter.emitted
                )));
            }
        }
    }

    let violations = reference.violation_logs.len();
    // Policy verdicts must agree everywhere (already fingerprint-compared
    // pairwise above; this is the belt-and-braces global check).
    for case in &cases {
        if case.violation_logs.len() != violations {
            return Err(diverge(format!(
                "violation counts differ: [{}] saw {}, [{}] saw {}",
                reference.label,
                violations,
                case.label,
                case.violation_logs.len()
            )));
        }
    }
    let policy = replay_policies(&prog, &reference.stream);
    Ok(OracleOk {
        reference,
        violations,
        policy,
    })
}

fn expect_count(
    corruption: &Corruption,
    policy: &str,
    count: u64,
    expected: bool,
) -> Result<(), Divergence> {
    if expected && count == 0 {
        return Err(diverge(format!(
            "corruption {corruption:?}: the {policy} policy was predicted to fire but saw 0 violations"
        )));
    }
    if !expected && count != 0 {
        return Err(diverge(format!(
            "corruption {corruption:?}: the {policy} policy was predicted silent but flagged {count} violations"
        )));
    }
    Ok(())
}

/// Runs the full differential matrix over a generated program, including
/// the policy dimension: benign programs must produce zero violations under
/// *every* policy; corrupted ones must be flagged by exactly the policies
/// the [`expected_detection`] map predicts (and by the combined policy),
/// in every configuration.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check(prog: &FuzzProgram, matrix: &MatrixConfig) -> Result<OracleOk, Divergence> {
    let ok = check_source(&prog.emit(), prog.compressed, matrix)?;
    let p = ok.policy;
    match &prog.corruption {
        None => {
            if ok.violations != 0 {
                return Err(diverge(format!(
                    "benign program flagged {} violations (false positive)",
                    ok.violations
                )));
            }
            if p != PolicyMatrix::default() {
                return Err(diverge(format!(
                    "benign program flagged golden-policy violations (false positive): {p:?}"
                )));
            }
        }
        Some(c) => {
            let want = expected_detection(c);
            // The RoT firmware implements the shadow stack, so its verdicts
            // must track the backward-edge prediction exactly; the golden
            // forward-edge policies carry the rest of the map.
            if want.shadow_stack && ok.violations == 0 {
                return Err(diverge(format!(
                    "corruption {c:?} raised no firmware violation — the policy failed to fire"
                )));
            }
            if !want.shadow_stack && ok.violations != 0 {
                return Err(diverge(format!(
                    "corruption {c:?}: forward-edge-only corruption flagged {} firmware \
                     (shadow-stack) violations",
                    ok.violations
                )));
            }
            expect_count(c, "shadow-stack", p.shadow_stack, want.shadow_stack)?;
            expect_count(c, "landing-pad", p.landing_pad, want.landing_pad)?;
            expect_count(c, "kcfi", p.kcfi, want.kcfi)?;
            if p.combined == 0 {
                return Err(diverge(format!(
                    "corruption {c:?}: the combined policy saw 0 violations"
                )));
            }
        }
    }
    Ok(ok)
}
