//! Differential fuzzing for the TitanCFI co-simulation.
//!
//! The simulator has four execution strategies that must be observationally
//! identical (strict per-cycle stepping, predecoded instruction caches,
//! quantum-batched fast-forwarding, and the dual-core scheduler) plus a
//! resilience layer that must be provably inert on a fault-free transport.
//! Until now every equivalence claim was pinned by hand-picked kernels;
//! this crate replaces that with *generated* coverage:
//!
//! * [`gen`] — a seeded random program generator producing structured
//!   control flow (call trees, bounded recursion, counted loops, indirect
//!   jumps through data-dependent jump tables, self-modifying patch sites,
//!   compressed and uncompressed encodings) that always terminates, emitted
//!   as `riscv-asm` source.
//! * [`oracle`] — runs one program under the full configuration matrix
//!   (strict vs predecode vs fast-forward × IRQ vs polling firmware ×
//!   resilience armed vs [`titancfi::ResilienceConfig::off`], plus the
//!   dual-core SoC) and demands byte-identical commit-log streams,
//!   shadow-stack verdicts, and report fingerprints. Corruption variants
//!   (return-address hijack, jump-table smash, function-pointer type
//!   confusion) must be flagged by exactly the policies the per-variant
//!   expected-detection map predicts — the shadow stack, Zicfilp landing
//!   pads, and KCFI type hashes respectively — in *every* configuration.
//! * [`shrink`] — on divergence, delta-debugs the program (function-level
//!   removal, then instruction-level chunk removal) down to a minimal
//!   reproducer, re-running the oracle at every step.
//! * [`repro`] — writes the shrunk case as a self-contained
//!   `.repro.rs`-style file into `tests/repros/`.
//!
//! The `titancfi-bench --bin fuzz` binary fans seeds through the
//! `titancfi-harness` pool with the content-addressed result cache and is
//! wired into CI as a time-boxed smoke.

pub mod gen;
pub mod oracle;
pub mod repro;
pub mod shrink;

pub use gen::{Corruption, CorruptionVariant, FuzzProgram, GenOptions, GENERATOR_VERSION};
pub use oracle::{
    check, check_source, expected_detection, replay_policies, CaseOutcome, Divergence, ExecMode,
    ExpectedDetection, MatrixConfig, OracleOk, PolicyMatrix,
};
pub use repro::{write_repro, ReproContext};
pub use shrink::{instruction_count, shrink};
