//! Seeded random control-flow program generator.
//!
//! Programs are built as a small AST ([`FuzzProgram`]) and rendered to
//! `riscv-asm` source, so the shrinker can delete structure (functions,
//! then individual operations) and re-render instead of patching bytes.
//!
//! # Termination by construction
//!
//! Every generated program halts on its own:
//!
//! * the call graph is a DAG — function `i` only ever calls functions with
//!   a *higher* index;
//! * the one sanctioned cycle is bounded self-recursion: a recursive
//!   function counts `a0` down to zero and every entry re-checks it;
//! * loops are counted (`t4` down from a literal), never conditional on
//!   data;
//! * indirect jumps only dispatch through generated jump tables whose arms
//!   all rejoin straight-line code.
//!
//! # Register discipline
//!
//! `s1` is the global checksum accumulator (compared across configurations
//! at halt), `a0` carries recursion depth and the final result, `t4` is
//! reserved for loop counters, and `t0`–`t3` are per-operation scratch.
//! `t0`/`ra` are never used as indirect-jump scratch: `x1`/`x5` are link
//! registers to the CFI filter's classifier, and the generator must produce
//! `IndirectJump`-classified dispatches, not phantom calls.

use riscv_isa::encode::encode;
use riscv_isa::inst::{AluImmOp, Inst};
use riscv_isa::Reg;
use titancfi_harness::Xoshiro256;

/// Bump when generated programs change for a given seed — part of every
/// fuzz job's cache descriptor, so stale cached verdicts are invalidated.
pub const GENERATOR_VERSION: u32 = 2;

/// Landing-pad label on every generated function entry.
pub const FN_LABEL: u32 = 1;
/// Landing-pad label on every jump-table arm.
pub const ARM_LABEL: u32 = 2;
/// Landing-pad label on the never-executed decoy pad after `finish` — a
/// correctly-formed but *mislabeled* pad present in every program, so a
/// smashed edge that happens to land there still trips label matching.
pub const DECOY_LABEL: u32 = 3;

/// Host RAM base for generated programs (same as the workload kernels).
pub const FUZZ_BASE: u64 = 0x8000_0000;
/// Host RAM size for generated programs.
pub const FUZZ_MEM: usize = 1 << 20;

/// A checksum-mixing step (all state lives in `s1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// `addi s1, s1, imm`.
    Add(i32),
    /// `xori s1, s1, imm`.
    Xor(i32),
    /// `li t0, k; mul s1, s1, t0; addi s1, s1, 1` (k odd, keeps entropy).
    MulAdd(i64),
}

/// One generated operation inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Fold a constant into the checksum.
    Mix(MixKind),
    /// Store/load round trip through `data_buf` (near-code memory traffic,
    /// exercising the decode-cache watermark on every store).
    DataRoundTrip {
        /// 8-byte slot index inside `data_buf`.
        slot: u8,
    },
    /// Counted loop over mix/data ops (`t4` literal countdown).
    Loop {
        /// Iteration count (≥ 1).
        count: u8,
        /// Loop body (mix/data ops only — no calls, no nested loops).
        body: Vec<Op>,
    },
    /// Direct call (`call f<callee>`, classified `Call` via `jal ra`).
    Call {
        /// Callee function index (always > caller index).
        callee: usize,
    },
    /// Register-indirect call (`la t1, f<callee>; jalr t1`, classified
    /// `Call` via the `ra` link destination).
    IndirectCall {
        /// Callee function index (always > caller index).
        callee: usize,
    },
    /// Call into a recursive function with a literal depth in `a0`.
    RecursiveCall {
        /// Callee function index (must be recursive).
        callee: usize,
        /// Recursion depth (bounded, ≥ 1).
        depth: u8,
    },
    /// Data-dependent dispatch through a jump table: the arm is selected
    /// by the low bits of the checksum, so different checksum histories
    /// take different indirect-jump targets.
    TableSwitch {
        /// Number of arms (2, 4, or 8).
        arms: u8,
    },
    /// Self-modifying call pair: call the patchable callee (warming the
    /// decode cache over its patch slot), overwrite the slot's `xori`
    /// immediate with a 4-byte store, `fence.i`, call again. The patched
    /// immediate changes which jump-table arm the callee takes, so a stale
    /// decoded instruction diverges the commit-log stream.
    PatchedCall {
        /// Callee function index (must be patchable).
        callee: usize,
    },
}

/// A generated function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Func {
    /// Counts `a0` down through bounded self-recursion.
    pub recursive: bool,
    /// Contains a patchable `xori` slot feeding a 4-arm jump table.
    pub patchable: bool,
    /// `(original, patched)` `xori` immediates for patchable functions;
    /// chosen so the selected jump-table arm differs.
    pub patch_consts: Option<(u16, u16)>,
    /// Body operations.
    pub body: Vec<Op>,
}

/// A deliberate control-flow corruption planted into an otherwise benign
/// program — the oracle demands the policy fires on it in every
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// After the epilogue restores `ra` in function `func`, overwrite it
    /// with the address of a landing pad — a classic backward-edge hijack
    /// the shadow stack must flag. The pad rejoins the exit path, so the
    /// program still terminates.
    ReturnHijack {
        /// Hijacked function index (0 is always reachable from `_start`).
        func: usize,
    },
    /// Every `.dword` entry of the first jump table in function `func` is
    /// redirected to a mid-function gadget carrying no `lpad` marker — the
    /// classic JOP pivot only the landing-pad policy can flag (the gadget
    /// rejoins the dispatch exit, so the program still terminates, and no
    /// call/return edge is disturbed).
    JumpTableSmash {
        /// Function whose first top-level jump table is smashed.
        func: usize,
    },
    /// The first `IndirectCall` to `from` inside function `func` loads the
    /// address of `to` instead — a function of a *different type class*
    /// whose entry carries a perfectly valid landing pad. Landing pads
    /// miss it; only the KCFI type-hash comparison catches it.
    FnPtrTypeConfusion {
        /// Function whose call site is confused.
        func: usize,
        /// Original callee index (the site's `.kcfi_expect` still names
        /// this function's type).
        from: usize,
        /// Swapped-in callee index (wrong type, valid pad).
        to: usize,
    },
}

impl Corruption {
    /// The anchor function indices the shrinker must never delete: the
    /// corrupted function itself plus, for pointer confusion, both callees.
    #[must_use]
    pub fn anchors(&self) -> Vec<usize> {
        match *self {
            Corruption::ReturnHijack { func } | Corruption::JumpTableSmash { func } => vec![func],
            Corruption::FnPtrTypeConfusion { func, from, to } => vec![func, from, to],
        }
    }
}

/// Which corruption to plant — the anchor indices and any structural
/// prerequisites are filled in by [`FuzzProgram::with_corruption_variant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionVariant {
    /// Backward-edge return-address overwrite (shadow stack catches).
    ReturnHijack,
    /// Jump-table entry redirected to a non-`lpad` gadget (landing pads
    /// catch).
    JumpTableSmash,
    /// Function pointer swapped to a wrong-type, validly-padded function
    /// (only KCFI catches).
    FnPtrTypeConfusion,
}

impl CorruptionVariant {
    /// All variants, in detection-map order.
    pub const ALL: [CorruptionVariant; 3] = [
        CorruptionVariant::ReturnHijack,
        CorruptionVariant::JumpTableSmash,
        CorruptionVariant::FnPtrTypeConfusion,
    ];
}

/// The type class of function `i` in `funcs` (see
/// [`FuzzProgram::type_class`]).
#[must_use]
pub fn func_type_class(funcs: &[Func], i: usize) -> u32 {
    if funcs[i].recursive {
        0
    } else if funcs[i].patchable {
        1
    } else {
        2 + (i as u32 % 2)
    }
}

/// FNV-1a hash of a type class — the 32-bit KCFI signature stored at
/// `[fn-4]` and expected by every instrumented call site.
#[must_use]
pub fn type_hash(class: u32) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in class.to_le_bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Generation knobs beyond the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenOptions {
    /// Guarantee at least one patchable function and one `PatchedCall`
    /// reaching it (used by the decode-cache mutation test, which needs
    /// self-modifying code to expose stale cache entries).
    pub force_self_modify: bool,
}

/// A generated program: AST plus everything needed to re-render it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzProgram {
    /// Generation seed (for reproduction commands).
    pub seed: u64,
    /// Whether the RVC compressor runs over eligible statements.
    pub compressed: bool,
    /// Initial checksum value loaded into `s1`.
    pub init: i64,
    /// `a0` passed to `f0` (recursion depth when `f0` is recursive).
    pub entry_depth: u8,
    /// Function bodies; `f0` is the entry callee.
    pub funcs: Vec<Func>,
    /// Planted corruption, if any.
    pub corruption: Option<Corruption>,
}

/// Domain-separation salt for the generator's PRNG stream.
const GEN_SALT: u64 = 0x7469_7461_6e63_6669; // "titancfi"

fn gen_mix(rng: &mut Xoshiro256) -> Op {
    match rng.below(3) {
        0 => Op::Mix(MixKind::Add(rng.range_i64(-2048, 2048) as i32)),
        1 => Op::Mix(MixKind::Xor(rng.range_i64(0, 2048) as i32)),
        _ => Op::Mix(MixKind::MulAdd(rng.range_i64(3, 9999) | 1)),
    }
}

fn gen_simple_op(rng: &mut Xoshiro256) -> Op {
    match rng.below(4) {
        0 => Op::DataRoundTrip {
            slot: rng.below(8) as u8,
        },
        _ => gen_mix(rng),
    }
}

/// Generates one body op for function `i`. `leaf` bans call-like ops
/// (recursive and patchable bodies must not clobber `a0`/`ra` mid-flight).
fn gen_op(rng: &mut Xoshiro256, i: usize, funcs: &[Func], leaf: bool) -> Op {
    let callees: Vec<usize> = (i + 1..funcs.len()).collect();
    let roll = rng.below(10);
    match roll {
        0 | 1 if !leaf && !callees.is_empty() => {
            let callee = callees[rng.below(callees.len() as u64) as usize];
            if funcs[callee].recursive {
                Op::RecursiveCall {
                    callee,
                    depth: 1 + rng.below(3) as u8,
                }
            } else if funcs[callee].patchable {
                if rng.below(2) == 0 {
                    Op::PatchedCall { callee }
                } else {
                    Op::Call { callee }
                }
            } else if rng.below(2) == 0 {
                Op::IndirectCall { callee }
            } else {
                Op::Call { callee }
            }
        }
        2 => Op::TableSwitch {
            arms: 1 << (1 + rng.below(3)),
        },
        3 => {
            let n = 1 + rng.below(3) as usize;
            Op::Loop {
                count: 1 + rng.below(4) as u8,
                body: (0..n).map(|_| gen_simple_op(rng)).collect(),
            }
        }
        4 => Op::DataRoundTrip {
            slot: rng.below(8) as u8,
        },
        _ => gen_mix(rng),
    }
}

fn gen_patch_consts(rng: &mut Xoshiro256) -> (u16, u16) {
    let k0 = rng.below(2048) as u16;
    loop {
        let k1 = rng.below(2048) as u16;
        // The patch dispatch selects on bit 0, so the patched immediate
        // must flip it — otherwise both encodings take the same arm and a
        // stale decode would be invisible.
        if (k0 ^ k1) & 1 != 0 {
            return (k0, k1);
        }
    }
}

/// Whether a body contains call-like ops (needs `ra` saved across it).
fn has_call_ops(body: &[Op]) -> bool {
    body.iter().any(|op| match op {
        Op::Call { .. }
        | Op::IndirectCall { .. }
        | Op::RecursiveCall { .. }
        | Op::PatchedCall { .. } => true,
        Op::Loop { body, .. } => has_call_ops(body),
        _ => false,
    })
}

impl FuzzProgram {
    /// Generates the program for `seed` with default options.
    #[must_use]
    pub fn generate(seed: u64) -> FuzzProgram {
        FuzzProgram::generate_opts(seed, GenOptions::default())
    }

    /// Generates the program for `seed`.
    #[must_use]
    pub fn generate_opts(seed: u64, opts: GenOptions) -> FuzzProgram {
        let mut rng = Xoshiro256::new(seed ^ GEN_SALT);
        let nfuncs = 2 + rng.below(5) as usize;
        let mut funcs: Vec<Func> = (0..nfuncs)
            .map(|i| {
                let recursive = rng.below(4) == 0;
                let patchable = !recursive && i > 0 && rng.below(4) == 0;
                Func {
                    recursive,
                    patchable,
                    patch_consts: None,
                    body: Vec::new(),
                }
            })
            .collect();
        if opts.force_self_modify {
            let last = funcs.last_mut().expect("nfuncs >= 2");
            last.recursive = false;
            last.patchable = true;
        }
        for f in &mut funcs {
            if f.patchable {
                f.patch_consts = Some(gen_patch_consts(&mut rng));
            }
        }
        let meta = funcs.clone();
        for (i, f) in funcs.iter_mut().enumerate() {
            let leaf = f.recursive || f.patchable;
            let n_ops = 1 + rng.below(5) as usize;
            f.body = (0..n_ops)
                .map(|_| gen_op(&mut rng, i, &meta, leaf))
                .collect();
        }
        if opts.force_self_modify {
            let target = funcs.len() - 1;
            let has_patched_call = funcs
                .iter()
                .any(|f| f.body.contains(&Op::PatchedCall { callee: target }));
            if !has_patched_call {
                funcs[0].body.push(Op::PatchedCall { callee: target });
                funcs[0].recursive = false;
                funcs[0].patchable = false;
                funcs[0].patch_consts = None;
            }
        }
        let entry_depth = if funcs[0].recursive {
            1 + rng.below(3) as u8
        } else {
            0
        };
        FuzzProgram {
            seed,
            compressed: rng.below(2) == 0,
            init: rng.range_i64(-100_000, 100_000),
            entry_depth,
            funcs,
            corruption: None,
        }
    }

    /// The type class of function `i`: recursive functions, patchable
    /// functions, and plain functions (two flavours by parity) get distinct
    /// classes, so swapping a pointer between classes changes the KCFI hash.
    #[must_use]
    pub fn type_class(&self, i: usize) -> u32 {
        func_type_class(&self.funcs, i)
    }

    /// The same program with a return-address hijack planted in `f0` (the
    /// function `_start` always calls, so the corruption always triggers).
    #[must_use]
    pub fn with_corruption(&self) -> FuzzProgram {
        self.with_corruption_variant(CorruptionVariant::ReturnHijack)
    }

    /// The same program with the given corruption variant planted in `f0`
    /// (always reachable from `_start`, so the corruption always triggers).
    /// Structural prerequisites — a jump table for [`Corruption::JumpTableSmash`],
    /// a pair of distinct-type callees for [`Corruption::FnPtrTypeConfusion`] —
    /// are appended if the generated program lacks them.
    #[must_use]
    pub fn with_corruption_variant(&self, variant: CorruptionVariant) -> FuzzProgram {
        let mut p = self.clone();
        match variant {
            CorruptionVariant::ReturnHijack => {
                p.corruption = Some(Corruption::ReturnHijack { func: 0 });
            }
            CorruptionVariant::JumpTableSmash => {
                let has_table = p.funcs[0]
                    .body
                    .iter()
                    .any(|op| matches!(op, Op::TableSwitch { .. }));
                if !has_table {
                    p.funcs[0].body.push(Op::TableSwitch { arms: 2 });
                }
                p.corruption = Some(Corruption::JumpTableSmash { func: 0 });
            }
            CorruptionVariant::FnPtrTypeConfusion => {
                // Append two fresh plain leaf callees at consecutive indices:
                // their parity-based type classes always differ, their valid
                // `lpad` entries satisfy the landing-pad policy, and neither
                // touches `a0`/`ra`, so any `f0` (even recursive) may call
                // them mid-body.
                let from = p.funcs.len();
                let to = from + 1;
                for filler in [11, 13] {
                    p.funcs.push(Func {
                        recursive: false,
                        patchable: false,
                        patch_consts: None,
                        body: vec![Op::Mix(MixKind::Add(filler))],
                    });
                }
                p.funcs[0].body.push(Op::IndirectCall { callee: from });
                p.corruption = Some(Corruption::FnPtrTypeConfusion { func: 0, from, to });
            }
        }
        p
    }

    /// Renders the program as `riscv-asm` source.
    #[must_use]
    pub fn emit(&self) -> String {
        let mut e = Emitter::default();
        e.line("# generated by titancfi-fuzz");
        e.line(&format!(
            "# seed {} · compressed {} · corruption {:?}",
            self.seed, self.compressed, self.corruption
        ));
        e.line("_start:");
        e.line(&format!("    li   s1, {}", self.init));
        if self.entry_depth > 0 {
            e.line(&format!("    li   a0, {}", self.entry_depth));
        }
        if !self.funcs.is_empty() {
            e.line("    call f0");
        }
        if matches!(self.corruption, Some(Corruption::ReturnHijack { .. })) {
            // The hijack landing pad exists only on hijacked variants —
            // shrunk benign reproducers stay minimal.
            e.line("    j    finish");
            e.line("hijack_land:");
            e.line("    xori s1, s1, 677");
        }
        e.line("finish:");
        e.line("    mv   a0, s1");
        e.line("    ebreak");
        // A correctly-formed but never-executed decoy pad with a label no
        // site expects: a smashed edge landing here still mismatches.
        e.line("decoy_pad:");
        e.line(&format!("    lpad {DECOY_LABEL}"));
        e.line("    j    finish");
        for (i, f) in self.funcs.iter().enumerate() {
            self.emit_func(&mut e, i, f);
        }
        e.line(".align 3");
        e.line("data_buf:");
        e.line("    .zero 64");
        let data = std::mem::take(&mut e.data);
        for d in data {
            e.line(&d);
        }
        e.out
    }

    fn emit_func(&self, e: &mut Emitter, i: usize, f: &Func) {
        // Leaf functions (no calls anywhere in the body, no recursion)
        // never clobber `ra` and skip the frame entirely.
        let needs_frame = f.recursive || has_call_ops(&f.body);
        match self.corruption {
            Some(Corruption::JumpTableSmash { func }) if func == i => e.smash_armed = true,
            Some(Corruption::FnPtrTypeConfusion { func, from, to }) if func == i => {
                e.confuse = Some((from, to));
            }
            _ => {}
        }
        // KCFI type hash in the word before the entry; lpad right at it.
        e.line(".align 2");
        e.line(&format!(".kcfi {}", type_hash(self.type_class(i))));
        e.line(&format!("f{i}:"));
        e.line(&format!("    lpad {FN_LABEL}"));
        if needs_frame {
            e.line("    addi sp, sp, -16");
            e.line("    sd   ra, 8(sp)");
        }
        for op in &f.body {
            self.emit_op(e, op);
        }
        if f.patchable {
            emit_patch_slot(e, i, f);
        }
        if f.recursive {
            e.line(&format!("    blez a0, f{i}_done"));
            e.line("    addi a0, a0, -1");
            e.line(&format!("    call f{i}"));
            e.line(&format!("f{i}_done:"));
        }
        if needs_frame {
            e.line("    ld   ra, 8(sp)");
            e.line("    addi sp, sp, 16");
        }
        if self.corruption == Some(Corruption::ReturnHijack { func: i }) {
            e.line("    la   ra, hijack_land");
        }
        e.line("    ret");
    }

    fn emit_op(&self, e: &mut Emitter, op: &Op) {
        match op {
            Op::Mix(MixKind::Add(imm)) => e.line(&format!("    addi s1, s1, {imm}")),
            Op::Mix(MixKind::Xor(imm)) => e.line(&format!("    xori s1, s1, {imm}")),
            Op::Mix(MixKind::MulAdd(k)) => {
                e.line(&format!("    li   t0, {k}"));
                e.line("    mul  s1, s1, t0");
                e.line("    addi s1, s1, 1");
            }
            Op::DataRoundTrip { slot } => {
                let off = u32::from(*slot) * 8;
                e.line("    la   t0, data_buf");
                e.line(&format!("    sd   s1, {off}(t0)"));
                e.line(&format!("    ld   t1, {off}(t0)"));
                e.line("    add  s1, s1, t1");
            }
            Op::Loop { count, body } => {
                let id = e.fresh();
                e.line(&format!("    li   t4, {count}"));
                e.line(&format!("lp_{id}:"));
                for op in body {
                    self.emit_op(e, op);
                }
                e.line("    addi t4, t4, -1");
                e.line(&format!("    bnez t4, lp_{id}"));
            }
            Op::Call { callee } => e.line(&format!("    call f{callee}")),
            Op::IndirectCall { callee } => {
                // Under pointer confusion the first matching site loads the
                // wrong-type callee while keeping the original expectation.
                let loaded = match e.confuse {
                    Some((from, to)) if from == *callee => {
                        e.confuse = None;
                        to
                    }
                    _ => *callee,
                };
                e.line(&format!("    la   t1, f{loaded}"));
                e.line(&format!(
                    "    .kcfi_expect {}",
                    type_hash(self.type_class(*callee))
                ));
                e.line(&format!("    .lpad_expect {FN_LABEL}"));
                e.line("    jalr t1");
            }
            Op::RecursiveCall { callee, depth } => {
                e.line(&format!("    li   a0, {depth}"));
                e.line(&format!("    call f{callee}"));
            }
            Op::TableSwitch { arms } => {
                let id = e.fresh();
                let smash = std::mem::take(&mut e.smash_armed);
                e.line("    mv   t2, s1");
                emit_dispatch(e, *arms, id, smash);
            }
            Op::PatchedCall { callee } => {
                let (_, k1) = self.funcs[*callee]
                    .patch_consts
                    .expect("PatchedCall targets a patchable function");
                e.line(&format!("    call f{callee}"));
                e.line(&format!("    la   t1, patch_slot_{callee}"));
                e.line(&format!("    li   t3, {}", patch_encoding(k1)));
                e.line("    sw   t3, 0(t1)");
                e.line("    fence.i");
                e.line(&format!("    call f{callee}"));
            }
        }
    }
}

/// The patched replacement encoding for a patch slot: `xori t2, zero, k1`.
#[must_use]
pub fn patch_encoding(k1: u16) -> u32 {
    encode(&Inst::AluImm {
        op: AluImmOp::Xori,
        rd: Reg::T2,
        rs1: Reg::ZERO,
        imm: i64::from(k1),
        word: false,
    })
}

#[derive(Default)]
struct Emitter {
    out: String,
    data: Vec<String>,
    next_id: u32,
    /// The next top-level `TableSwitch` emits a smashed jump table.
    smash_armed: bool,
    /// The next `IndirectCall` to `.0` loads `.1` instead.
    confuse: Option<(usize, usize)>,
}

impl Emitter {
    fn line(&mut self, s: &str) {
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn fresh(&mut self) -> u32 {
        self.next_id += 1;
        self.next_id
    }
}

/// Emits a jump-table dispatch on `t2` (must already hold the arm index in
/// its low bits, wider bits ignored via `andi`). With `smash`, every table
/// entry is redirected to a gadget carrying no `lpad` — the arm bodies stay
/// in place (and keep their pads), but control never reaches them.
fn emit_dispatch(e: &mut Emitter, arms: u8, id: u32, smash: bool) {
    e.line(&format!("    andi t2, t2, {}", arms - 1));
    e.line("    slli t2, t2, 3");
    e.line(&format!("    la   t1, jt_{id}"));
    e.line("    add  t1, t1, t2");
    e.line("    ld   t1, 0(t1)");
    e.line(&format!("    .lpad_expect {ARM_LABEL}"));
    e.line("    jr   t1");
    let mut table = format!("jt_{id}:");
    for a in 0..arms {
        if smash {
            table.push_str(&format!("\n    .dword smash_{id}"));
        } else {
            table.push_str(&format!("\n    .dword jt_{id}_a{a}"));
        }
    }
    e.data.push(table);
    for a in 0..arms {
        e.line(&format!("jt_{id}_a{a}:"));
        e.line(&format!("    lpad {ARM_LABEL}"));
        e.line(&format!("    addi s1, s1, {}", i32::from(a) * 7 + 3));
        e.line(&format!("    j    jt_{id}_end"));
    }
    if smash {
        // Mid-function gadget: no pad, rejoins the exit, still terminates.
        e.line(&format!("smash_{id}:"));
        e.line("    xori s1, s1, 677");
        e.line(&format!("    j    jt_{id}_end"));
    }
    e.line(&format!("jt_{id}_end:"));
}

fn emit_patch_slot(e: &mut Emitter, i: usize, f: &Func) {
    let (k0, _) = f.patch_consts.expect("patchable implies consts");
    let id = e.fresh();
    e.line(&format!("patch_slot_{i}:"));
    e.line(&format!("    xori t2, zero, {k0}"));
    // Two arms selected by bit 0 — `gen_patch_consts` guarantees the
    // patched immediate flips it, so a stale decode takes the other arm.
    emit_dispatch(e, 2, id, false);
}
