//! Delta-debugging shrinker for diverging programs.
//!
//! Shrinking works on the [`FuzzProgram`] AST, not on bytes: every
//! candidate is re-rendered and re-run through the full oracle, so a kept
//! reduction is *guaranteed* to still diverge. Three passes run to a fixed
//! point:
//!
//! 1. **Function removal** — drop whole functions (highest index first),
//!    dropping call sites that referenced them and re-indexing the rest.
//! 2. **Operation-chunk removal** — ddmin-style: per function, try deleting
//!    chunks of the body at halving granularity down to single operations.
//! 3. **Operation simplification** — unwrap loops to a single iteration of
//!    their body, reduce jump tables to two arms, clamp recursion depth.
//!
//! The oracle is the expensive part (a full matrix per candidate), so the
//! passes are greedy: any successful reduction restarts its pass.
//!
//! **Corruption anchors are preserved.** A corrupted program's oracle check
//! fails *by design* (the expected-detection assertions), so a candidate
//! that merely deleted the planted corruption would still "diverge" and be
//! kept — leaving a reproducer that exercises a different policy than the
//! original. Every pass therefore rejects candidates whose corruption
//! anchors (the hijacked function, the smashed jump table, the confused
//! call site and both its callees) no longer exist.

use crate::gen::{Corruption, FuzzProgram, Op};
use crate::oracle::{check, MatrixConfig};

/// Whether `prog` still diverges (the shrinking predicate).
fn diverges(prog: &FuzzProgram, matrix: &MatrixConfig) -> bool {
    check(prog, matrix).is_err()
}

/// Whether the planted corruption's structural anchors survive: the
/// corruption still renders into the same attack, so a divergence on this
/// candidate reproduces the *same* policy's detection as the original.
fn anchors_intact(prog: &FuzzProgram) -> bool {
    match prog.corruption {
        None => true,
        Some(Corruption::ReturnHijack { func }) => func < prog.funcs.len(),
        Some(Corruption::JumpTableSmash { func }) => prog
            .funcs
            .get(func)
            .is_some_and(|f| f.body.iter().any(|op| matches!(op, Op::TableSwitch { .. }))),
        Some(Corruption::FnPtrTypeConfusion { func, from, to }) => {
            from < prog.funcs.len()
                && to < prog.funcs.len()
                && prog.funcs.get(func).is_some_and(|f| {
                    f.body
                        .iter()
                        .any(|op| matches!(op, Op::IndirectCall { callee } if *callee == from))
                })
        }
    }
}

/// The full keep predicate: anchors intact *and* still diverging.
fn keepable(prog: &FuzzProgram, matrix: &MatrixConfig) -> bool {
    anchors_intact(prog) && diverges(prog, matrix)
}

/// Rewrites a body after function `k` was removed: ops calling `k` are
/// dropped, indices above `k` shift down.
fn remap_body(body: &[Op], k: usize) -> Vec<Op> {
    let mut out = Vec::with_capacity(body.len());
    for op in body {
        match op {
            Op::Call { callee } | Op::IndirectCall { callee } if *callee == k => {}
            Op::RecursiveCall { callee, .. } | Op::PatchedCall { callee } if *callee == k => {}
            Op::Call { callee } => out.push(Op::Call {
                callee: callee - usize::from(*callee > k),
            }),
            Op::IndirectCall { callee } => out.push(Op::IndirectCall {
                callee: callee - usize::from(*callee > k),
            }),
            Op::RecursiveCall { callee, depth } => out.push(Op::RecursiveCall {
                callee: callee - usize::from(*callee > k),
                depth: *depth,
            }),
            Op::PatchedCall { callee } => out.push(Op::PatchedCall {
                callee: callee - usize::from(*callee > k),
            }),
            Op::Loop { count, body } => out.push(Op::Loop {
                count: *count,
                body: remap_body(body, k),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// The program with function `k` removed, or `None` when `k` must stay
/// (last function, or the corruption target).
fn remove_func(prog: &FuzzProgram, k: usize) -> Option<FuzzProgram> {
    if prog.funcs.len() <= 1 {
        return None;
    }
    if let Some(c) = prog.corruption {
        if c.anchors().contains(&k) {
            return None;
        }
    }
    let mut p = prog.clone();
    p.funcs.remove(k);
    for f in &mut p.funcs {
        f.body = remap_body(&f.body, k);
    }
    match &mut p.corruption {
        Some(Corruption::ReturnHijack { func } | Corruption::JumpTableSmash { func })
            if *func > k =>
        {
            *func -= 1;
        }
        Some(Corruption::FnPtrTypeConfusion { func, from, to }) => {
            for idx in [func, from, to] {
                if *idx > k {
                    *idx -= 1;
                }
            }
        }
        _ => {}
    }
    Some(p)
}

fn shrink_functions(cur: &mut FuzzProgram, matrix: &MatrixConfig) -> bool {
    let mut progressed = false;
    'restart: loop {
        for k in (0..cur.funcs.len()).rev() {
            if let Some(cand) = remove_func(cur, k) {
                if keepable(&cand, matrix) {
                    *cur = cand;
                    progressed = true;
                    continue 'restart;
                }
            }
        }
        return progressed;
    }
}

fn shrink_ops(cur: &mut FuzzProgram, matrix: &MatrixConfig) -> bool {
    let mut progressed = false;
    for i in 0..cur.funcs.len() {
        let mut chunk = cur.funcs[i].body.len().max(1);
        while chunk >= 1 {
            let mut start = 0;
            while start < cur.funcs[i].body.len() {
                let end = (start + chunk).min(cur.funcs[i].body.len());
                let mut cand = cur.clone();
                cand.funcs[i].body.drain(start..end);
                if keepable(&cand, matrix) {
                    *cur = cand;
                    progressed = true;
                    // Re-test from the same start — the body shifted left.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    progressed
}

/// One-step simplifications of a single op; returns candidate replacements
/// ordered most-aggressive first.
fn simplify(op: &Op) -> Vec<Vec<Op>> {
    match op {
        Op::Loop { count, body } => {
            let mut cands = vec![body.clone()];
            if *count > 1 {
                cands.push(vec![Op::Loop {
                    count: 1,
                    body: body.clone(),
                }]);
            }
            cands
        }
        Op::TableSwitch { arms } if *arms > 2 => vec![vec![Op::TableSwitch { arms: 2 }]],
        Op::RecursiveCall { callee, depth } if *depth > 1 => vec![vec![Op::RecursiveCall {
            callee: *callee,
            depth: 1,
        }]],
        Op::IndirectCall { callee } => vec![vec![Op::Call { callee: *callee }]],
        _ => Vec::new(),
    }
}

fn shrink_simplify(cur: &mut FuzzProgram, matrix: &MatrixConfig) -> bool {
    let mut progressed = false;
    for i in 0..cur.funcs.len() {
        let mut j = 0;
        while j < cur.funcs[i].body.len() {
            let mut replaced = false;
            for replacement in simplify(&cur.funcs[i].body[j]) {
                let mut cand = cur.clone();
                cand.funcs[i].body.splice(j..=j, replacement);
                if keepable(&cand, matrix) {
                    *cur = cand;
                    progressed = true;
                    replaced = true;
                    break;
                }
            }
            if !replaced {
                j += 1;
            }
        }
    }
    progressed
}

/// Shrinks a diverging program to a (locally) minimal one that still
/// diverges under the same matrix. If `prog` does not actually diverge it
/// is returned unchanged.
#[must_use]
pub fn shrink(prog: &FuzzProgram, matrix: &MatrixConfig) -> FuzzProgram {
    if !diverges(prog, matrix) {
        return prog.clone();
    }
    let mut cur = prog.clone();
    loop {
        let mut progressed = false;
        progressed |= shrink_functions(&mut cur, matrix);
        progressed |= shrink_ops(&mut cur, matrix);
        progressed |= shrink_simplify(&mut cur, matrix);
        if !progressed {
            return cur;
        }
    }
}

/// Number of instruction statements in rendered assembly source (labels,
/// directives, comments, and blank lines excluded). Pseudo-instructions
/// count as one statement each — the granularity the shrinker works at.
#[must_use]
pub fn instruction_count(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with('#') && !l.starts_with('.') && !l.ends_with(':')
        })
        .count()
}
