//! The campaign's headline guarantees, tested end to end on the real jobs:
//! parallel output is byte-identical to the serial paths, and a warm cache
//! reproduces the same bytes without running anything.

use std::path::PathBuf;
use titancfi_bench::campaign::{CampaignPlan, PlanSpec};
use titancfi_harness::{run_campaign, CampaignConfig, ResultCache, Telemetry, TelemetrySink};

fn run(
    plan: &CampaignPlan,
    workers: usize,
    cache: Option<ResultCache>,
) -> titancfi_harness::CampaignOutcome {
    let cfg = CampaignConfig {
        workers,
        cache,
        ..CampaignConfig::default()
    };
    run_campaign(plan.jobs(), &cfg, &Telemetry::new(TelemetrySink::Null))
}

/// A four-worker campaign assembles the exact bytes the serial functions
/// produce — the scheduling of the pool never leaks into the artifacts.
#[test]
fn parallel_campaign_matches_serial_output() {
    let plan = CampaignPlan::build(PlanSpec {
        tables: true,
        sweep: true,
        native: false,
    });
    let outcome = run(&plan, 4, None);
    assert_eq!(
        outcome.report.failed, 0,
        "failures: {:?}",
        outcome.report.failures
    );
    let artifacts = plan.assemble(&outcome);
    assert_eq!(
        artifacts.table1.as_deref(),
        Some(titancfi_bench::table1().as_str())
    );
    assert_eq!(
        artifacts.table2.as_deref(),
        Some(titancfi_bench::table2().as_str())
    );
    assert_eq!(
        artifacts.table3.as_deref(),
        Some(titancfi_bench::table3().as_str())
    );
    assert_eq!(
        artifacts.table4.as_deref(),
        Some(titancfi_bench::table4().as_str())
    );
    assert_eq!(
        artifacts.sweep.as_deref(),
        Some(titancfi_bench::sweep_text().as_str())
    );
    assert!(
        artifacts.native.is_none(),
        "native suite was not in the plan"
    );
}

/// Aggregated metric totals — including the stall-attribution counters the
/// Table III jobs emit — are identical at `-j1` and `-j8`: instrumentation
/// is as deterministic as the artifacts.
#[test]
fn metric_totals_deterministic_across_worker_counts() {
    let plan = CampaignPlan::build(PlanSpec {
        tables: true,
        sweep: false,
        native: false,
    });
    let serial = run(&plan, 1, None);
    let wide = run(&plan, 8, None);
    assert_eq!(serial.report.failed, 0);
    assert_eq!(wide.report.failed, 0);
    assert_eq!(
        serial.report.metric_totals, wide.report.metric_totals,
        "metric totals must not depend on worker count"
    );
    for key in [
        "sim_cycles",
        "stall.cycles.d1",
        "stall.cycles.d8",
        "stall.events.d1",
        "stall.events.d8",
    ] {
        assert!(
            serial.report.metric_totals.contains_key(key),
            "missing metric total `{key}`"
        );
    }
    // Depth 8 can only help: the aggregate confirms Table III's premise.
    assert!(
        serial.report.metric_totals["stall.cycles.d8"]
            <= serial.report.metric_totals["stall.cycles.d1"]
    );
}

/// A second run over the same cache executes nothing, reports every job as
/// a cache hit, and still assembles identical bytes.
#[test]
fn warm_cache_reproduces_identical_artifacts() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("campaign-warm-cache");
    let _ = std::fs::remove_dir_all(&dir);

    let plan = CampaignPlan::build(PlanSpec {
        tables: true,
        sweep: true,
        native: false,
    });
    let cold = run(
        &plan,
        4,
        Some(ResultCache::open(&dir).expect("cache opens")),
    );
    assert_eq!(
        cold.report.failed, 0,
        "failures: {:?}",
        cold.report.failures
    );
    assert_eq!(
        cold.report.cached, 0,
        "first run starts from an empty cache"
    );
    assert_eq!(cold.report.ran, plan.len());

    let warm = run(
        &plan,
        2,
        Some(ResultCache::open(&dir).expect("cache reopens")),
    );
    assert_eq!(warm.report.ran, 0, "warm run must not execute any job");
    assert_eq!(warm.report.cached, plan.len());

    let a = plan.assemble(&cold);
    let b = plan.assemble(&warm);
    assert_eq!(a.table1, b.table1);
    assert_eq!(a.table2, b.table2);
    assert_eq!(a.table3, b.table3);
    assert_eq!(a.table4, b.table4);
    assert_eq!(a.sweep, b.sweep);

    let _ = std::fs::remove_dir_all(&dir);
}
