//! The simulation campaign: every evaluation artifact expressed as
//! independent jobs for the `titancfi-harness` pool.
//!
//! A [`CampaignPlan`] turns the evaluation into a job list — one job per
//! Table I firmware variant, per Table II/III row, per sweep benchmark, per
//! native kernel — remembers which submission indices belong to which
//! artifact, and [`assemble`](CampaignPlan::assemble)s the pool's outputs
//! back into the exact texts the serial binaries print. Jobs call the same
//! fragment functions as the serial paths (`table3_row_line`,
//! `sweep_block`, ...), so parallel and serial output are byte-identical
//! by construction, regardless of worker count or scheduling.
//!
//! Every job carries a canonical [`JobDescriptor`] naming all inputs that
//! determine its output (benchmark, queue depth, latencies, seed, schema
//! version), which is what makes the on-disk result cache sound: change a
//! parameter — or bump [`SCHEMA_VERSION`] after changing a model — and the
//! hash, hence the cache key, changes with it.

use std::ops::Range;
use std::sync::Arc;

use titancfi::firmware::FirmwareKind;
use titancfi_harness::{CampaignOutcome, Job, JobDescriptor, JobOutput};
use titancfi_workloads::published::{
    self, LATENCY_IRQ, LATENCY_OPT, LATENCY_POLL, TABLE2, TABLE2_QUEUE_DEPTH, TABLE3,
    TABLE3_QUEUE_DEPTH,
};
use titancfi_workloads::{ComparisonRow, Kernel, PublishedRow};

/// Bumped whenever a fragment's rendering or an underlying model changes
/// in a way that alters output for the same parameters — it is part of
/// every descriptor, so bumping it invalidates all cached results at once.
pub const SCHEMA_VERSION: u32 = 3;

fn latency_field() -> (&'static str, String) {
    (
        "latencies",
        format!("{LATENCY_OPT}/{LATENCY_POLL}/{LATENCY_IRQ}"),
    )
}

fn schema_field() -> (&'static str, String) {
    ("schema", SCHEMA_VERSION.to_string())
}

/// One Table I firmware variant: runs the RV32 firmware on the Ibex model
/// and renders that variant's rows.
struct Table1VariantJob {
    kind: FirmwareKind,
}

impl Job for Table1VariantJob {
    fn label(&self) -> String {
        format!("table1:{}", self.kind.name())
    }

    fn descriptor(&self) -> JobDescriptor {
        JobDescriptor::new(
            "table1_variant",
            &[schema_field(), ("variant", self.kind.name().to_string())],
        )
    }

    fn run(&self) -> Result<JobOutput, String> {
        let (rows, latency) = crate::table1_variant_rows(self.kind);
        Ok(JobOutput {
            artifact: rows,
            metrics: vec![("avg_latency".to_string(), latency as f64)],
        })
    }
}

/// One Table II row: calibrates the benchmark's trace and replays it at
/// queue depth 1 against the competitor models.
struct Table2RowJob {
    row: &'static ComparisonRow,
}

impl Job for Table2RowJob {
    fn label(&self) -> String {
        format!("table2:{}", self.row.name)
    }

    fn descriptor(&self) -> JobDescriptor {
        JobDescriptor::new(
            "table2_row",
            &[
                schema_field(),
                ("name", self.row.name.to_string()),
                ("depth", TABLE2_QUEUE_DEPTH.to_string()),
                latency_field(),
                (
                    "seed",
                    format!("{:#018x}", crate::xtitan_seed(self.row.name)),
                ),
            ],
        )
    }

    fn run(&self) -> Result<JobOutput, String> {
        let stats = published::table3_row(self.row.name)
            .ok_or_else(|| format!("no trace stats for {}", self.row.name))?;
        Ok(JobOutput {
            artifact: crate::table2_row_line(self.row),
            // Three latencies replayed plus two competitor models.
            metrics: vec![("sim_cycles".to_string(), stats.cycles as f64 * 5.0)],
        })
    }
}

/// One Table III row: calibrated trace replayed at queue depth 8 and the
/// three firmware latencies.
struct Table3RowJob {
    row: &'static PublishedRow,
}

impl Job for Table3RowJob {
    fn label(&self) -> String {
        format!("table3:{}", self.row.name)
    }

    fn descriptor(&self) -> JobDescriptor {
        JobDescriptor::new(
            "table3_row",
            &[
                schema_field(),
                ("name", self.row.name.to_string()),
                ("depth", TABLE3_QUEUE_DEPTH.to_string()),
                latency_field(),
                (
                    "seed",
                    format!("{:#018x}", crate::xtitan_seed(self.row.name)),
                ),
            ],
        )
    }

    fn run(&self) -> Result<JobOutput, String> {
        // Stall attribution at the table's queue depth and the depth-1
        // counterfactual, so the campaign report can total why rows stall.
        let trace =
            titancfi_workloads::synthetic::trace_for(self.row, crate::xtitan_seed(self.row.name));
        let d8 = titancfi_trace::simulate(&trace, LATENCY_IRQ, TABLE3_QUEUE_DEPTH);
        let d1 = titancfi_trace::simulate(&trace, LATENCY_IRQ, 1);
        Ok(JobOutput {
            artifact: crate::table3_row_line(self.row),
            metrics: vec![
                ("sim_cycles".to_string(), self.row.cycles as f64 * 3.0),
                ("stall.cycles.d8".to_string(), d8.stall_cycles as f64),
                ("stall.events.d8".to_string(), d8.stall_events as f64),
                ("stall.cycles.d1".to_string(), d1.stall_cycles as f64),
                ("stall.events.d1".to_string(), d1.stall_events as f64),
            ],
        })
    }
}

/// Table IV: the structural resource estimator (cheap; a single job).
struct Table4Job;

impl Job for Table4Job {
    fn label(&self) -> String {
        "table4".to_string()
    }

    fn descriptor(&self) -> JobDescriptor {
        JobDescriptor::new("table4", &[schema_field(), ("depth", "8".to_string())])
    }

    fn run(&self) -> Result<JobOutput, String> {
        Ok(JobOutput::text(crate::table4()))
    }
}

/// One design-space sweep benchmark: depth × latency grid on a calibrated
/// trace.
struct SweepJob {
    name: &'static str,
}

impl Job for SweepJob {
    fn label(&self) -> String {
        format!("sweep:{}", self.name)
    }

    fn descriptor(&self) -> JobDescriptor {
        JobDescriptor::new(
            "sweep_block",
            &[
                schema_field(),
                ("name", self.name.to_string()),
                ("depths", format!("{:?}", crate::SWEEP_DEPTHS)),
                latency_field(),
                ("seed", format!("{:#x}", crate::SWEEP_SEED)),
            ],
        )
    }

    fn run(&self) -> Result<JobOutput, String> {
        let stats = published::table3_row(self.name)
            .ok_or_else(|| format!("no published row for {}", self.name))?;
        let grid = (crate::SWEEP_DEPTHS.len() * 3) as f64;
        Ok(JobOutput {
            artifact: crate::sweep_block(self.name),
            metrics: vec![("sim_cycles".to_string(), stats.cycles as f64 * grid)],
        })
    }
}

/// One native kernel: assembled, executed on the CVA6 model, and replayed
/// through the queue model — the campaign's heaviest jobs.
struct NativeKernelJob {
    name: &'static str,
}

impl Job for NativeKernelJob {
    fn label(&self) -> String {
        format!("native:{}", self.name)
    }

    fn descriptor(&self) -> JobDescriptor {
        JobDescriptor::new(
            "native_kernel",
            &[
                schema_field(),
                ("kernel", self.name.to_string()),
                ("cap", crate::NATIVE_CYCLE_CAP.to_string()),
                ("depth", TABLE3_QUEUE_DEPTH.to_string()),
                latency_field(),
            ],
        )
    }

    fn run(&self) -> Result<JobOutput, String> {
        let kernel =
            Kernel::by_name(self.name).ok_or_else(|| format!("unknown kernel {}", self.name))?;
        let (line, cycles) = crate::native_kernel_line(kernel)?;
        Ok(JobOutput {
            artifact: line,
            metrics: vec![("sim_cycles".to_string(), cycles as f64)],
        })
    }
}

/// A job that always panics — `--poison` appends it to demonstrate that
/// one crashing job is isolated and reported without taking down the
/// campaign or corrupting any artifact.
pub struct PoisonJob;

impl Job for PoisonJob {
    fn label(&self) -> String {
        "poison".to_string()
    }

    fn descriptor(&self) -> JobDescriptor {
        JobDescriptor::new("poison", &[schema_field()])
    }

    fn run(&self) -> Result<JobOutput, String> {
        panic!("deliberately poisoned job (--poison)");
    }
}

/// Which artifacts a plan covers.
#[derive(Debug, Clone, Copy)]
pub struct PlanSpec {
    /// Tables I–IV.
    pub tables: bool,
    /// The queue-depth × latency design-space sweep.
    pub sweep: bool,
    /// The native kernel suite on the CVA6 model.
    pub native: bool,
}

/// The job list for one campaign, with the submission-index ranges needed
/// to reassemble each artifact afterwards.
pub struct CampaignPlan {
    jobs: Vec<Arc<dyn Job>>,
    t1: Range<usize>,
    t2: Range<usize>,
    t3: Range<usize>,
    t4: Range<usize>,
    sweep: Range<usize>,
    native: Range<usize>,
}

/// The reassembled artifacts; `None` where the plan did not cover the
/// artifact or one of its jobs failed.
#[derive(Debug)]
pub struct Artifacts {
    /// Table I text.
    pub table1: Option<String>,
    /// Table II text.
    pub table2: Option<String>,
    /// Table III text.
    pub table3: Option<String>,
    /// Table IV text.
    pub table4: Option<String>,
    /// Design-space sweep text.
    pub sweep: Option<String>,
    /// Native-suite text.
    pub native: Option<String>,
}

impl CampaignPlan {
    /// Builds the job list for the requested artifacts.
    #[must_use]
    pub fn build(spec: PlanSpec) -> CampaignPlan {
        let mut jobs: Vec<Arc<dyn Job>> = Vec::new();
        let (t1, t2, t3, t4);
        if spec.tables {
            let s = jobs.len();
            for &kind in &FirmwareKind::ALL {
                jobs.push(Arc::new(Table1VariantJob { kind }));
            }
            t1 = s..jobs.len();
            let s = jobs.len();
            for row in &TABLE2 {
                jobs.push(Arc::new(Table2RowJob { row }));
            }
            t2 = s..jobs.len();
            let s = jobs.len();
            for row in &TABLE3 {
                jobs.push(Arc::new(Table3RowJob { row }));
            }
            t3 = s..jobs.len();
            let s = jobs.len();
            jobs.push(Arc::new(Table4Job));
            t4 = s..jobs.len();
        } else {
            (t1, t2, t3, t4) = (0..0, 0..0, 0..0, 0..0);
        }
        let sweep = if spec.sweep {
            let s = jobs.len();
            for name in crate::SWEEP_BENCHMARKS {
                jobs.push(Arc::new(SweepJob { name }));
            }
            s..jobs.len()
        } else {
            0..0
        };
        let native = if spec.native {
            let s = jobs.len();
            for kernel in titancfi_workloads::all_kernels() {
                jobs.push(Arc::new(NativeKernelJob { name: kernel.name }));
            }
            s..jobs.len()
        } else {
            0..0
        };
        CampaignPlan {
            jobs,
            t1,
            t2,
            t3,
            t4,
            sweep,
            native,
        }
    }

    /// The full evaluation: all four tables, the sweep, and the native
    /// suite.
    #[must_use]
    pub fn full() -> CampaignPlan {
        CampaignPlan::build(PlanSpec {
            tables: true,
            sweep: true,
            native: true,
        })
    }

    /// Just the four paper tables (what the `report` binary needs).
    #[must_use]
    pub fn tables_only() -> CampaignPlan {
        CampaignPlan::build(PlanSpec {
            tables: true,
            sweep: false,
            native: false,
        })
    }

    /// The job list, in submission order, for [`titancfi_harness::run_campaign`].
    #[must_use]
    pub fn jobs(&self) -> Vec<Arc<dyn Job>> {
        self.jobs.clone()
    }

    /// Number of jobs in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    fn fragments(&self, outcome: &CampaignOutcome, range: &Range<usize>) -> Option<Vec<String>> {
        if range.is_empty() {
            return None; // artifact not covered by this plan
        }
        range
            .clone()
            .map(|i| outcome.output(i).map(|o| o.artifact.clone()))
            .collect()
    }

    /// The measured check latencies (IRQ, Polling, Optimized) recovered
    /// from the Table I jobs' metrics.
    #[must_use]
    pub fn latencies(&self, outcome: &CampaignOutcome) -> Option<[u64; 3]> {
        if self.t1.len() != 3 {
            return None;
        }
        let mut latencies = [0u64; 3];
        for (slot, index) in self.t1.clone().enumerate() {
            latencies[slot] = outcome.output(index)?.metric("avg_latency")? as u64;
        }
        Some(latencies)
    }

    /// Reassembles every artifact this plan covers from the pool outputs.
    #[must_use]
    pub fn assemble(&self, outcome: &CampaignOutcome) -> Artifacts {
        Artifacts {
            table1: self
                .fragments(outcome, &self.t1)
                .and_then(|rows| Some(crate::table1_assemble(&rows, self.latencies(outcome)?))),
            table2: self
                .fragments(outcome, &self.t2)
                .map(|rows| crate::table2_assemble(&rows)),
            table3: self
                .fragments(outcome, &self.t3)
                .map(|rows| crate::table3_assemble(&rows)),
            table4: self
                .fragments(outcome, &self.t4)
                .and_then(|mut rows| (rows.len() == 1).then(|| rows.remove(0))),
            sweep: self
                .fragments(outcome, &self.sweep)
                .map(|blocks| crate::sweep_assemble(&blocks)),
            native: self
                .fragments(outcome, &self.native)
                .map(|lines| crate::native_assemble(&lines)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_plan_counts() {
        let plan = CampaignPlan::full();
        let native_kernels = titancfi_workloads::all_kernels().count();
        assert_eq!(
            plan.len(),
            3 + TABLE2.len() + TABLE3.len() + 1 + crate::SWEEP_BENCHMARKS.len() + native_kernels
        );
    }

    #[test]
    fn descriptors_are_unique() {
        let plan = CampaignPlan::full();
        let mut hashes: Vec<u64> = plan
            .jobs()
            .iter()
            .map(|j| j.descriptor().content_hash())
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(
            hashes.len(),
            plan.len(),
            "every job must have a distinct cache key"
        );
    }

    #[test]
    fn empty_ranges_assemble_to_none() {
        let plan = CampaignPlan::build(PlanSpec {
            tables: false,
            sweep: false,
            native: false,
        });
        assert!(plan.is_empty());
    }
}
