//! The TitanCFI evaluation harness: regenerates every table of the paper.
//!
//! Each `tableN` function reproduces the corresponding artifact of the
//! paper's evaluation section and returns it as formatted text; the
//! `table1`..`table4` binaries print them. `EXPERIMENTS.md` records the
//! paper-vs-measured comparison these functions produce.
//!
//! | Function | Paper artifact | Method |
//! |---|---|---|
//! | [`table1`] | Table I — firmware cycle breakdown | real RV32 firmware on the Ibex model |
//! | [`table2`] | Table II — slowdown vs DExIE/FIXER, queue depth 1 | calibrated traces through the queue model |
//! | [`table3`] | Table III — full-suite slowdown, queue depth 8 | same |
//! | [`table4`] | Table IV — FPGA resource overhead | structural estimator |
//!
//! Every artifact is split into *fragment* functions (one table row, one
//! sweep block, one kernel line) plus an `*_assemble` function that stitches
//! fragments into the final text. The serial `tableN`/`sweep_text`/
//! `native_suite_text` paths and the parallel [`campaign`] jobs call the
//! same fragments, so their outputs are byte-identical by construction.

pub mod campaign;
pub mod fault_campaign;

use std::fmt::Write as _;
use titancfi::firmware::{CheckMeasurement, FirmwareKind, FirmwareRunner};
use titancfi::{Category, CommitLog, Phase};
use titancfi_fpga as fpga;
use titancfi_trace::baselines::{DexieModel, FixerModel};
use titancfi_trace::{simulate, Trace};
use titancfi_workloads::published::{
    self, LATENCY_IRQ, LATENCY_OPT, LATENCY_POLL, TABLE2, TABLE2_QUEUE_DEPTH, TABLE3,
    TABLE3_QUEUE_DEPTH,
};
use titancfi_workloads::synthetic::trace_for;
use titancfi_workloads::{ComparisonRow, Kernel, PublishedRow, KERNEL_MEM};

/// A representative call commit log (used by Table I).
#[must_use]
pub fn sample_call() -> CommitLog {
    CommitLog {
        pc: 0x8000_0000,
        insn: 0x1000_00ef,
        next: 0x8000_0004,
        target: 0x8000_0100,
    }
}

/// The matching return commit log.
#[must_use]
pub fn sample_ret() -> CommitLog {
    CommitLog {
        pc: 0x8000_0104,
        insn: 0x0000_8067,
        next: 0x8000_0108,
        target: 0x8000_0004,
    }
}

/// Measures one CALL and one RET in each firmware variant.
#[must_use]
pub fn measure_all_variants() -> Vec<(FirmwareKind, CheckMeasurement, CheckMeasurement)> {
    FirmwareKind::ALL
        .iter()
        .map(|&kind| {
            let mut fw = FirmwareRunner::new(kind);
            let call = fw.check(&sample_call());
            let ret = fw.check(&sample_ret());
            assert!(
                !call.violation && !ret.violation,
                "reference pair must pass"
            );
            (kind, call, ret)
        })
        .collect()
}

/// The measured per-check latencies (IRQ, Polling, Optimized), averaged
/// over CALL and RET — this reproduction's equivalents of the paper's
/// 267 / 112 / 73.
#[must_use]
pub fn measured_latencies() -> [u64; 3] {
    let ms = measure_all_variants();
    [0, 1, 2].map(|i| (ms[i].1.latency + ms[i].2.latency) / 2)
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// The Table I rows contributed by one firmware variant (CALL and RET,
/// per-category breakdown plus totals), and its average check latency.
/// This is one campaign job's worth of work.
#[must_use]
pub fn table1_variant_rows(kind: FirmwareKind) -> (String, u64) {
    let mut fw = FirmwareRunner::new(kind);
    let call = fw.check(&sample_call());
    let ret = fw.check(&sample_ret());
    assert!(
        !call.violation && !ret.violation,
        "reference pair must pass"
    );
    let mut out = String::new();
    for (op, m) in [("CALL", &call), ("RET", &ret)] {
        for cat in Category::ALL {
            let irq = m.breakdown.cell(Phase::Irq, cat);
            let cfi = m.breakdown.cell(Phase::Cfi, cat);
            let _ = writeln!(
                out,
                "{:<10} {:<5} {:<9} | {:>5} {:>5} {:>5} | {:>6} {:>6} {:>6}",
                kind.name(),
                op,
                cat.to_string(),
                irq.instructions,
                cfi.instructions,
                irq.instructions + cfi.instructions,
                irq.cycles,
                cfi.cycles,
                irq.cycles + cfi.cycles,
            );
        }
        let irq = m.breakdown.phase_total(Phase::Irq);
        let cfi = m.breakdown.phase_total(Phase::Cfi);
        let _ = writeln!(
            out,
            "{:<10} {:<5} {:<9} | {:>5} {:>5} {:>5} | {:>6} {:>6} {:>6}   latency {}",
            kind.name(),
            op,
            "TOT",
            irq.instructions,
            cfi.instructions,
            irq.instructions + cfi.instructions,
            irq.cycles,
            cfi.cycles,
            irq.cycles + cfi.cycles,
            m.latency,
        );
    }
    (out, (call.latency + ret.latency) / 2)
}

/// Stitches per-variant row blocks (in [`FirmwareKind::ALL`] order) and the
/// measured latencies into the full Table I text.
#[must_use]
pub fn table1_assemble(variant_rows: &[String], latencies: [u64; 3]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE I — cycles to implement the return address protection policy in OpenTitan"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<5} {:<9} | {:>5} {:>5} {:>5} | {:>6} {:>6} {:>6}",
        "Variant", "Op.", "", "I.IRQ", "I.CFI", "I.TOT", "C.IRQ", "C.CFI", "C.TOT"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for rows in variant_rows {
        out.push_str(rows);
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Measured average check latency: IRQ {} / Polling {} / Optimized {} cycles",
        latencies[0], latencies[1], latencies[2]
    );
    let _ = writeln!(
        out,
        "Paper reference:                IRQ {LATENCY_IRQ} / Polling {LATENCY_POLL} / Optimized {LATENCY_OPT} cycles"
    );
    out
}

/// Regenerates Table I: cycles to enforce the return-address-protection
/// policy in OpenTitan, split {IRQ, CFI} × {Logic, Mem-RoT, Mem-SoC}.
#[must_use]
pub fn table1() -> String {
    let parts: Vec<(String, u64)> = FirmwareKind::ALL
        .iter()
        .map(|&kind| table1_variant_rows(kind))
        .collect();
    let latencies = [parts[0].1, parts[1].1, parts[2].1];
    let rows: Vec<String> = parts.into_iter().map(|(rows, _)| rows).collect();
    table1_assemble(&rows, latencies)
}

// ---------------------------------------------------------------------------
// Tables II and III (trace-model replays)
// ---------------------------------------------------------------------------

/// Simulated slowdowns (Opt, Poll, IRQ) in percent for a published row at
/// the given queue depth, using the paper's emulation latencies.
#[must_use]
pub fn simulated_slowdowns(row: &published::PublishedRow, depth: usize) -> [f64; 3] {
    let trace = trace_for(row, xtitan_seed(row.name));
    [LATENCY_OPT, LATENCY_POLL, LATENCY_IRQ]
        .map(|lat| simulate(&trace, lat, depth).slowdown_percent())
}

/// Deterministic per-benchmark seed (stable across runs; FNV-1a over the
/// benchmark name, same function the campaign descriptors record).
#[must_use]
pub fn xtitan_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// One Table II data line — the fragment a `table2` campaign job computes.
#[must_use]
pub fn table2_row_line(cmp: &ComparisonRow) -> String {
    let row = published::table3_row(cmp.name).expect("trace stats");
    let trace = trace_for(row, xtitan_seed(row.name));
    let got = simulated_slowdowns(row, TABLE2_QUEUE_DEPTH);
    let competitor = cmp.competitor.map_or_else(
        || "n.a.".to_string(),
        |v| format!("{v:.0} ({})", cmp.competitor_name),
    );
    // Our mechanistic model of the same competitor on the same trace.
    let model = match cmp.competitor_name {
        "DExIE" => DexieModel::default().slowdown_percent(&trace),
        _ => FixerModel::default().slowdown_percent(&trace),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<15} {:>10} {:>7.0} | {:>7.0} {:>7.0} {:>7.0} | {:>7.0} {:>7.0} {:>7.0}",
        cmp.name,
        competitor,
        model,
        got[0],
        got[1],
        got[2],
        cmp.titancfi[0],
        cmp.titancfi[1],
        cmp.titancfi[2],
    );
    out
}

/// Stitches per-row Table II lines (in [`TABLE2`] order) into the full
/// table text.
#[must_use]
pub fn table2_assemble(rows: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE II — runtime slowdown comparison with DExIE [8] and FIXER [6]"
    );
    let _ = writeln!(out, "(CFI queue depth {TABLE2_QUEUE_DEPTH}; slowdown in %)");
    let _ = writeln!(
        out,
        "{:<15} {:>10} {:>7} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "Benchmark", "Published", "Model", "Opt.", "Poll.", "IRQ", "p.Opt", "p.Poll", "p.IRQ"
    );
    let _ = writeln!(out, "{}", "-".repeat(92));
    for line in rows {
        out.push_str(line);
    }
    let _ = writeln!(
        out,
        "
(`Model` re-derives the competitor's overhead mechanistically: DExIE as a"
    );
    let _ = writeln!(
        out,
        "clock-degrading lock-step monitor, FIXER as inline check instructions.)"
    );
    let _ = writeln!(
        out,
        "\n(p.* columns are the paper's published values; FIXER reports only a"
    );
    let _ = writeln!(
        out,
        "{:.1} % aggregate overhead without a per-benchmark breakdown.)",
        published::FIXER_AGGREGATE_OVERHEAD
    );
    out
}

/// Regenerates Table II: runtime slowdown at queue depth 1 vs the
/// published DExIE and FIXER numbers.
#[must_use]
pub fn table2() -> String {
    let rows: Vec<String> = TABLE2.iter().map(table2_row_line).collect();
    table2_assemble(&rows)
}

/// One Table III data line — the fragment a `table3` campaign job computes.
#[must_use]
pub fn table3_row_line(row: &PublishedRow) -> String {
    let got = simulated_slowdowns(row, TABLE3_QUEUE_DEPTH);
    let fmt_sd = |v: f64| {
        if v < 0.5 {
            "-".to_string()
        } else {
            format!("{v:.0}")
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>9} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        row.name,
        row.cycles,
        row.cf,
        fmt_sd(got[0]),
        fmt_sd(got[1]),
        fmt_sd(got[2]),
        fmt_sd(row.slowdown_opt),
        fmt_sd(row.slowdown_poll),
        fmt_sd(row.slowdown_irq),
    );
    out
}

/// Stitches per-row Table III lines (one per [`TABLE3`] entry, in order)
/// into the full table text, inserting the suite separators.
#[must_use]
pub fn table3_assemble(rows: &[String]) -> String {
    assert_eq!(rows.len(), TABLE3.len(), "one fragment per published row");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE III — slowdown on the full suites (CFI queue depth {TABLE3_QUEUE_DEPTH})"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>9} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "Benchmark", "Cycles", "CF", "Opt.", "Poll.", "IRQ", "p.Opt", "p.Poll", "p.IRQ"
    );
    let _ = writeln!(out, "{}", "-".repeat(95));
    let mut suite = None;
    for (row, line) in TABLE3.iter().zip(rows) {
        if suite != Some(row.suite) {
            suite = Some(row.suite);
            let _ = writeln!(out, "--- {} ---", row.suite.name());
        }
        out.push_str(line);
    }
    let _ = writeln!(
        out,
        "\n(p.* columns are the paper's published values. The IRQ column is the"
    );
    let _ = writeln!(
        out,
        "calibration target; Poll./Opt. are predictions of the queue model.)"
    );
    out
}

/// Regenerates Table III: the full EmBench-IoT + RISC-V-Tests sweep at
/// queue depth 8.
#[must_use]
pub fn table3() -> String {
    let rows: Vec<String> = TABLE3.iter().map(table3_row_line).collect();
    table3_assemble(&rows)
}

/// Stall-cause attribution for every Table III benchmark: *why* a depth-1
/// queue stalls where the depth-8 configuration does not. For each row the
/// trace is replayed at both depths (IRQ latency, the worst case) and the
/// stall is decomposed into RoT utilization (`cf · latency / cycles` — is
/// the check server simply oversubscribed?) versus burstiness (checks
/// arriving faster than one per latency window, which a deeper queue
/// absorbs).
#[must_use]
pub fn stall_attribution_table() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Stall-cause attribution (IRQ firmware, latency {LATENCY_IRQ} cycles)"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>7} | {:>9} {:>9} {:>9} | {:>9} {:>9}",
        "Benchmark", "CF", "util%", "d1 st.CF", "d1 st.cy", "cy/stall", "d8 st.CF", "d8 st.cy"
    );
    let _ = writeln!(out, "{}", "-".repeat(92));
    for row in &TABLE3 {
        let trace = trace_for(row, xtitan_seed(row.name));
        let d1 = simulate(&trace, LATENCY_IRQ, TABLE2_QUEUE_DEPTH);
        let d8 = simulate(&trace, LATENCY_IRQ, TABLE3_QUEUE_DEPTH);
        let util = 100.0 * (row.cf * LATENCY_IRQ) as f64 / row.cycles as f64;
        let per_stall = if d1.stall_events == 0 {
            0.0
        } else {
            d1.stall_cycles as f64 / d1.stall_events as f64
        };
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>7.1} | {:>9} {:>9} {:>9.1} | {:>9} {:>9}",
            row.name,
            row.cf,
            util,
            d1.stall_events,
            d1.stall_cycles,
            per_stall,
            d8.stall_events,
            d8.stall_cycles,
        );
    }
    let _ = writeln!(
        out,
        "\n(util% > 100 means the RoT check server itself is oversubscribed — no"
    );
    let _ = writeln!(
        out,
        "queue depth helps; util% < 100 with d1 stalls but no d8 stalls means the"
    );
    let _ = writeln!(
        out,
        "stalls are pure burstiness, which the depth-8 queue absorbs. 'st.CF' ="
    );
    let _ = writeln!(
        out,
        "control-flow retirements that stalled the core, 'st.cy' = stall cycles.)"
    );
    out
}

// ---------------------------------------------------------------------------
// Table IV
// ---------------------------------------------------------------------------

/// Regenerates Table IV: hardware resource utilization vs DExIE.
#[must_use]
pub fn table4() -> String {
    use fpga::published as p;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE IV — hardware resource utilization (queue depth 8)"
    );
    let _ = writeln!(
        out,
        "{:<6} {:<10} {:>10} {:>10} {:>9} {:>10} | {:>9}",
        "Scope", "Resource", "w/o CFI", "with CFI", "delta", "overhead", "paper d"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));

    let host = fpga::host_delta(8);
    let soc = fpga::soc_delta(8);
    let rows = [
        ("Host", p::HOST_BASE, host, p::HOST_DELTA),
        ("SoC", p::SOC_BASE, soc, p::SOC_DELTA),
        ("DExIE", p::DEXIE_BASE, p::DEXIE_DELTA, p::DEXIE_DELTA),
    ];
    for (scope, base, delta, paper) in rows {
        let (lut_pct, ff_pct, bram_pct) = delta.percent_of(&base);
        for (name, b, d, pct, pd) in [
            ("LUT", base.lut, delta.lut, lut_pct, paper.lut),
            ("Registers", base.ff, delta.ff, ff_pct, paper.ff),
            ("BRAM", base.bram, delta.bram, bram_pct, paper.bram),
        ] {
            let _ = writeln!(
                out,
                "{:<6} {:<10} {:>10} {:>10} {:>9} {:>9.1}% | {:>9}",
                scope,
                name,
                b,
                b + d,
                d,
                pct,
                pd
            );
        }
    }
    let _ = writeln!(
        out,
        "\nTitanCFI host delta is {:.0} % of DExIE's LUT delta and needs no BRAM.",
        host.lut as f64 * 100.0 / p::DEXIE_DELTA.lut as f64
    );
    out
}

// ---------------------------------------------------------------------------
// Design-space sweep (the `sweep` binary's content)
// ---------------------------------------------------------------------------

/// The benchmarks the design-space sweep explores — the heaviest published
/// rows, where the queue-depth choice actually matters.
pub const SWEEP_BENCHMARKS: [&str; 5] = ["mm", "dhrystone", "cubic", "sglib-combined", "huffbench"];

/// Queue depths swept.
pub const SWEEP_DEPTHS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The fixed calibration seed the sweep uses for every benchmark.
pub const SWEEP_SEED: u64 = 0x5eed;

/// One benchmark's sweep block (header line, column header, one line per
/// depth, trailing blank line) — the fragment a `sweep` campaign job
/// computes.
#[must_use]
pub fn sweep_block(name: &str) -> String {
    let row = published::table3_row(name).expect("published row");
    let trace = trace_for(row, SWEEP_SEED);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}  ({} cycles, {} control-flow events)",
        row.cycles, row.cf
    );
    let _ = writeln!(
        out,
        "  {:>8} {:>10} {:>10} {:>10}",
        "depth", "IRQ(267)", "Poll(112)", "Opt(73)"
    );
    for depth in SWEEP_DEPTHS {
        let irq = simulate(&trace, LATENCY_IRQ, depth).slowdown_percent();
        let poll = simulate(&trace, LATENCY_POLL, depth).slowdown_percent();
        let opt = simulate(&trace, LATENCY_OPT, depth).slowdown_percent();
        let _ = writeln!(out, "  {depth:>8} {irq:>10.1} {poll:>10.1} {opt:>10.1}");
    }
    let _ = writeln!(out);
    out
}

/// Stitches per-benchmark sweep blocks (in [`SWEEP_BENCHMARKS`] order) into
/// the full sweep text.
#[must_use]
pub fn sweep_assemble(blocks: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Queue-depth x latency design space (slowdown %, calibrated traces)\n"
    );
    for block in blocks {
        out.push_str(block);
    }
    let _ = writeln!(
        out,
        "Reading: queue depth barely helps saturated benchmarks (mm) — only a"
    );
    let _ = writeln!(
        out,
        "faster check does — while bursty ones (huffbench) are fully absorbed at"
    );
    let _ = writeln!(
        out,
        "depth 8. That is the paper's implicit argument for pairing a small queue"
    );
    let _ = writeln!(
        out,
        "with firmware-latency optimization rather than growing the queue."
    );
    out
}

/// The full design-space sweep: queue depth × check latency on the
/// heaviest published benchmarks.
#[must_use]
pub fn sweep_text() -> String {
    let blocks: Vec<String> = SWEEP_BENCHMARKS
        .iter()
        .map(|name| sweep_block(name))
        .collect();
    sweep_assemble(&blocks)
}

// ---------------------------------------------------------------------------
// Native kernel suite (the `native_suite` binary's content)
// ---------------------------------------------------------------------------

/// Cycle cap for one native kernel run.
pub const NATIVE_CYCLE_CAP: u64 = 500_000_000;

/// Runs one kernel on the CVA6 model and renders its suite line; also
/// returns the simulated cycle count (the campaign's throughput metric).
///
/// # Errors
///
/// Returns a message if the kernel fails to assemble or does not reach its
/// breakpoint within [`NATIVE_CYCLE_CAP`] cycles.
pub fn native_kernel_line(kernel: &Kernel) -> Result<(String, u64), String> {
    use cva6_model::{Cva6Core, Halt, TimingConfig};
    let prog = kernel
        .program()
        .map_err(|e| format!("{}: {e}", kernel.name))?;
    let mut core = Cva6Core::new(&prog, KERNEL_MEM, TimingConfig::default());
    let (commits, halt) = core.run(NATIVE_CYCLE_CAP);
    if halt != Halt::Breakpoint {
        return Err(format!("{} did not halt: {halt:?}", kernel.name));
    }
    let trace = Trace::from_commits(&commits, core.cycle());
    let density = trace.cf_count() as f64 * 1000.0 / core.cycle() as f64;
    let sd = [LATENCY_OPT, LATENCY_POLL, LATENCY_IRQ]
        .map(|lat| simulate(&trace, lat, TABLE3_QUEUE_DEPTH).slowdown_percent());
    let fmt = |v: f64| {
        if v < 0.5 {
            "-".to_string()
        } else {
            format!("{v:.0}")
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>8} {:>9.2} | {:>7} {:>7} {:>7}",
        kernel.name,
        core.cycle(),
        trace.cf_count(),
        density,
        fmt(sd[0]),
        fmt(sd[1]),
        fmt(sd[2]),
    );
    Ok((out, core.cycle()))
}

/// Stitches per-kernel lines (in [`titancfi_workloads::all_kernels`] order)
/// into the full native-suite text.
#[must_use]
pub fn native_assemble(lines: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Native kernel suite under the TitanCFI trace model (queue depth {TABLE3_QUEUE_DEPTH})"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>8} {:>9} | {:>7} {:>7} {:>7}",
        "Kernel", "Cycles", "CF", "CF/kcyc", "Opt.", "Poll.", "IRQ"
    );
    let _ = writeln!(out, "{}", "-".repeat(74));
    for line in lines {
        out.push_str(line);
    }
    let _ = writeln!(
        out,
        "\nKernels are this repo's own assembly implementations (see"
    );
    let _ = writeln!(
        out,
        "crates/workloads); traces come from actual execution on the CVA6 model."
    );
    out
}

/// The full native-suite sweep, run serially.
///
/// # Panics
///
/// Panics if any kernel fails to assemble or halt — every kernel in the
/// repository is expected to run to its breakpoint.
#[must_use]
pub fn native_suite_text() -> String {
    let lines: Vec<String> = titancfi_workloads::all_kernels()
        .map(|k| native_kernel_line(k).expect("kernel runs").0)
        .collect();
    native_assemble(&lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_nonempty() {
        for (name, table) in [("t2", table2()), ("t3", table3()), ("t4", table4())] {
            assert!(table.lines().count() > 8, "{name} too short:\n{table}");
        }
    }

    #[test]
    fn table1_runs_firmware() {
        let t = table1();
        assert!(t.contains("IRQ"));
        assert!(t.contains("Optimized"));
        assert!(t.contains("Paper reference"));
    }

    #[test]
    fn measured_latencies_ordered() {
        let [irq, poll, opt] = measured_latencies();
        assert!(irq > poll && poll > opt, "{irq} > {poll} > {opt}");
        // Within 2x of the paper's values.
        assert!((irq as f64 / LATENCY_IRQ as f64) < 2.0);
        assert!((opt as f64 / LATENCY_OPT as f64) < 2.0);
    }

    #[test]
    fn table3_shape_matches_paper() {
        // Spot-check: heavy rows stay heavy, clean rows stay clean, and
        // the latency ordering holds per row.
        for row in &TABLE3 {
            let got = simulated_slowdowns(row, TABLE3_QUEUE_DEPTH);
            assert!(
                got[0] <= got[1] + 1.0 && got[1] <= got[2] + 1.0,
                "{}",
                row.name
            );
            if row.slowdown_irq == 0.0 {
                assert!(got[2] < 2.0, "{}: clean row got {:.1}%", row.name, got[2]);
            }
            if row.slowdown_irq > 100.0 {
                assert!(got[2] > 50.0, "{}: heavy row got {:.1}%", row.name, got[2]);
            }
        }
    }

    #[test]
    fn sweep_text_covers_all_benchmarks() {
        let s = sweep_text();
        for name in SWEEP_BENCHMARKS {
            assert!(s.contains(name), "sweep missing {name}");
        }
    }
}
