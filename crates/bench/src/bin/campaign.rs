//! The parallel campaign driver: regenerates every evaluation artifact —
//! Tables I–IV, the design-space sweep, and the native kernel suite —
//! through the `titancfi-harness` worker pool, with content-addressed
//! result caching and JSONL telemetry.
//!
//! ```text
//! cargo run --release -p titancfi-bench --bin campaign -- -j 4
//! ```
//!
//! Output is byte-identical to the serial `table1`..`table4`, `sweep` and
//! `native_suite` binaries, regardless of `-j`; a second invocation is
//! served from `target/campaign-cache/`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use titancfi_bench::campaign::{CampaignPlan, PlanSpec, PoisonJob};
use titancfi_harness::{run_campaign, CampaignConfig, Job, ResultCache, Telemetry, TelemetrySink};

const USAGE: &str = "\
usage: campaign [options]

  -j, --jobs N        worker threads (default: all cores)
      --no-cache      disable the on-disk result cache
      --cache-dir P   cache directory (default: target/campaign-cache)
      --telemetry P   write a JSONL event stream to P ('-' for stderr)
      --tables-only   only Tables I-IV (skip sweep and native suite)
      --skip-native   skip the native kernel suite (the slowest jobs)
      --poison        append a deliberately panicking job (isolation demo)
  -h, --help          this text
";

struct Options {
    workers: usize,
    cache: bool,
    cache_dir: PathBuf,
    telemetry: Option<String>,
    spec: PlanSpec,
    poison: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        cache: true,
        cache_dir: PathBuf::from("target/campaign-cache"),
        telemetry: None,
        spec: PlanSpec {
            tables: true,
            sweep: true,
            native: true,
        },
        poison: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-j" | "--jobs" => {
                let v = args.next().ok_or("missing value for -j")?;
                opts.workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--no-cache" => opts.cache = false,
            "--cache-dir" => {
                opts.cache_dir = PathBuf::from(args.next().ok_or("missing value for --cache-dir")?);
            }
            "--telemetry" => {
                opts.telemetry = Some(args.next().ok_or("missing value for --telemetry")?);
            }
            "--tables-only" => {
                opts.spec.sweep = false;
                opts.spec.native = false;
            }
            "--skip-native" => opts.spec.native = false,
            "--poison" => opts.poison = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("campaign: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let plan = CampaignPlan::build(opts.spec);
    let mut jobs = plan.jobs();
    if opts.poison {
        jobs.push(Arc::new(PoisonJob) as Arc<dyn Job>);
    }

    let cache = if opts.cache {
        match ResultCache::open(&opts.cache_dir) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!(
                    "campaign: cannot open cache {}: {e}",
                    opts.cache_dir.display()
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let sink = match opts.telemetry.as_deref() {
        None => TelemetrySink::Null,
        Some("-") => TelemetrySink::Stderr,
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => TelemetrySink::File(f),
            Err(e) => {
                eprintln!("campaign: cannot open telemetry file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let telemetry = Telemetry::new(sink);

    let cfg = CampaignConfig {
        workers: opts.workers,
        cache,
        ..CampaignConfig::default()
    };
    let outcome = run_campaign(jobs, &cfg, &telemetry);
    let artifacts = plan.assemble(&outcome);

    let wanted = [
        (true, &artifacts.table1, "Table I"),
        (true, &artifacts.table2, "Table II"),
        (true, &artifacts.table3, "Table III"),
        (true, &artifacts.table4, "Table IV"),
        (opts.spec.sweep, &artifacts.sweep, "design-space sweep"),
        (opts.spec.native, &artifacts.native, "native suite"),
    ];
    let mut complete = true;
    let mut first = true;
    for (wanted, artifact, name) in wanted {
        if !wanted {
            continue;
        }
        match artifact {
            Some(text) => {
                if !first {
                    println!();
                }
                first = false;
                print!("{text}");
            }
            None => {
                complete = false;
                eprintln!("campaign: {name} is incomplete (see failures below)");
            }
        }
    }

    eprint!("{}", outcome.report.render());
    if complete {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
