//! Regenerates the paper's Table I (firmware cycle breakdown).
fn main() {
    print!("{}", titancfi_bench::table1());
}
