//! The differential fuzzing driver: seeds fanned through the worker pool,
//! each seed running the full cross-configuration oracle (benign program +
//! corruption variant) with the content-addressed result cache.
//!
//! ```text
//! cargo run --release -p titancfi-bench --bin fuzz -- --seeds 0..200
//! ```
//!
//! Exit status is nonzero if any seed diverged (or, under
//! `--mutate-decode-cache`, if the planted bug was *not* caught) — which is
//! what the CI smoke and nightly steps key on. Divergences are shrunk to a
//! minimal program and written as self-contained reproducers.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use titancfi_fuzz::{
    check, shrink, write_repro, CorruptionVariant, FuzzProgram, GenOptions, MatrixConfig,
    ReproContext, GENERATOR_VERSION,
};
use titancfi_harness::{
    run_campaign, CampaignConfig, Job, JobDescriptor, JobOutput, ResultCache, Telemetry,
    TelemetrySink,
};

const USAGE: &str = "\
usage: fuzz [options]

      --seeds A..B    seed range (default: 0..50)
      --smoke         quick PR gate: seeds 0..16
  -j, --jobs N        worker threads (default: all cores)
      --time-box S    stop dispatching new seed waves after S seconds
      --budget N      per-run host cycle budget (default: 4000000)
      --mutate-decode-cache
                      arm the planted decode-cache bug; the run then MUST
                      find and shrink a divergence (oracle self-test)
      --repro-dir P   reproducer directory (default: tests/repros, or
                      target/fuzz-repros under --mutate-decode-cache)
      --no-cache      disable the on-disk result cache
      --cache-dir P   cache directory (default: target/campaign-cache)
      --telemetry P   write a JSONL event stream to P ('-' for stderr)
  -h, --help          this text
";

struct Options {
    seeds: std::ops::Range<u64>,
    workers: usize,
    time_box: Option<Duration>,
    budget: u64,
    mutate: bool,
    repro_dir: Option<PathBuf>,
    cache: bool,
    cache_dir: PathBuf,
    telemetry: Option<String>,
}

fn parse_range(v: &str) -> Result<std::ops::Range<u64>, String> {
    let (a, b) = v
        .split_once("..")
        .ok_or_else(|| format!("bad seed range `{v}` (want A..B)"))?;
    let lo: u64 = a.parse().map_err(|_| format!("bad seed `{a}`"))?;
    let hi: u64 = b.parse().map_err(|_| format!("bad seed `{b}`"))?;
    if lo >= hi {
        return Err(format!("empty seed range `{v}`"));
    }
    Ok(lo..hi)
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seeds: 0..50,
        workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        time_box: None,
        budget: MatrixConfig::default().budget,
        mutate: false,
        repro_dir: None,
        cache: true,
        cache_dir: PathBuf::from("target/campaign-cache"),
        telemetry: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = args.next().ok_or("missing value for --seeds")?;
                opts.seeds = parse_range(&v)?;
            }
            "--smoke" => opts.seeds = 0..16,
            "-j" | "--jobs" => {
                let v = args.next().ok_or("missing value for -j")?;
                opts.workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--time-box" => {
                let v = args.next().ok_or("missing value for --time-box")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad time box `{v}`"))?;
                opts.time_box = Some(Duration::from_secs(secs));
            }
            "--budget" => {
                let v = args.next().ok_or("missing value for --budget")?;
                opts.budget = v.parse().map_err(|_| format!("bad budget `{v}`"))?;
            }
            "--mutate-decode-cache" => opts.mutate = true,
            "--repro-dir" => {
                opts.repro_dir = Some(PathBuf::from(
                    args.next().ok_or("missing value for --repro-dir")?,
                ));
            }
            "--no-cache" => opts.cache = false,
            "--cache-dir" => {
                opts.cache_dir = PathBuf::from(args.next().ok_or("missing value for --cache-dir")?);
            }
            "--telemetry" => {
                opts.telemetry = Some(args.next().ok_or("missing value for --telemetry")?);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// One seed through the oracle: benign program (must agree everywhere,
/// zero violations) plus every corruption variant of the policy axis
/// (each must be flagged by exactly the predicted policies everywhere).
/// On divergence the job shrinks the program, writes a reproducer, and
/// fails with the divergence detail — failed jobs are never cached, so
/// divergent seeds always re-run.
struct FuzzSeedJob {
    seed: u64,
    matrix: MatrixConfig,
    mutate: bool,
    repro_dir: PathBuf,
}

impl FuzzSeedJob {
    fn check_variant(&self, prog: &FuzzProgram, what: &str) -> Result<usize, String> {
        match check(prog, &self.matrix) {
            Ok(ok) => Ok(ok.reference.stream.len()),
            Err(divergence) => {
                let shrunk = shrink(prog, &self.matrix);
                let detail = check(&shrunk, &self.matrix)
                    .err()
                    .unwrap_or_else(|| divergence.clone());
                let ctx = ReproContext {
                    seed: self.seed,
                    divergence: &detail,
                    mutation_hook: self.mutate,
                };
                let written = match write_repro(&self.repro_dir, &shrunk, &ctx) {
                    Ok(path) => format!("reproducer: {}", path.display()),
                    Err(e) => format!("(reproducer write failed: {e})"),
                };
                Err(format!(
                    "seed {} {what} diverged: {detail}\n{written}",
                    self.seed
                ))
            }
        }
    }
}

impl Job for FuzzSeedJob {
    fn label(&self) -> String {
        format!("fuzz:{}", self.seed)
    }

    fn descriptor(&self) -> JobDescriptor {
        JobDescriptor::new(
            "fuzz-seed",
            &[
                ("seed", self.seed.to_string()),
                ("generator", GENERATOR_VERSION.to_string()),
                ("budget", self.matrix.budget.to_string()),
                ("multicore", self.matrix.multicore.to_string()),
                ("mutate", self.mutate.to_string()),
            ],
        )
    }

    fn run(&self) -> Result<JobOutput, String> {
        let benign = if self.mutate {
            FuzzProgram::generate_opts(
                self.seed,
                GenOptions {
                    force_self_modify: true,
                },
            )
        } else {
            FuzzProgram::generate(self.seed)
        };
        let logs = self.check_variant(&benign, "benign")?;
        for variant in CorruptionVariant::ALL {
            let corrupted = benign.with_corruption_variant(variant);
            let _ = self.check_variant(&corrupted, &format!("{variant:?}"))?;
        }
        Ok(JobOutput {
            artifact: format!("seed {}: ok ({logs} logs)\n", self.seed),
            metrics: vec![("stream_logs".to_string(), logs as f64)],
        })
    }
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("fuzz: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.mutate {
        riscv_isa::predecode::set_mutate_skip_store_invalidation(true);
        eprintln!("fuzz: planted decode-cache bug ARMED (oracle self-test)");
    }
    let repro_dir = opts.repro_dir.clone().unwrap_or_else(|| {
        if opts.mutate {
            PathBuf::from("target/fuzz-repros")
        } else {
            PathBuf::from("tests/repros")
        }
    });

    let matrix = MatrixConfig {
        budget: opts.budget,
        multicore: true,
    };
    let cache = if opts.cache {
        match ResultCache::open(&opts.cache_dir) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!("fuzz: cannot open cache {}: {e}", opts.cache_dir.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let sink = match opts.telemetry.as_deref() {
        None => TelemetrySink::Null,
        Some("-") => TelemetrySink::Stderr,
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => TelemetrySink::File(f),
            Err(e) => {
                eprintln!("fuzz: cannot open telemetry file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let telemetry = Telemetry::new(sink);

    // The time box bounds dispatch, not a single job: seeds go to the pool
    // in waves and the deadline is checked between waves. The cache makes
    // re-runs after a box expiry cheap — completed seeds replay instantly.
    let started = Instant::now();
    let wave = (opts.workers.max(1) * 8) as u64;
    let total = opts.seeds.end - opts.seeds.start;
    let mut dispatched = 0u64;
    let mut divergent: Vec<String> = Vec::new();
    let mut checked = 0u64;
    eprintln!(
        "fuzz: seeds {}..{} ({} seeds), {} workers{}",
        opts.seeds.start,
        opts.seeds.end,
        total,
        opts.workers,
        opts.time_box
            .map_or_else(String::new, |d| format!(", time box {}s", d.as_secs())),
    );

    while dispatched < total {
        if let Some(limit) = opts.time_box {
            if started.elapsed() >= limit {
                eprintln!(
                    "fuzz: time box reached after {checked} seeds; {} not dispatched",
                    total - dispatched
                );
                break;
            }
        }
        let lo = opts.seeds.start + dispatched;
        let hi = (lo + wave).min(opts.seeds.end);
        let jobs: Vec<Arc<dyn Job>> = (lo..hi)
            .map(|seed| {
                Arc::new(FuzzSeedJob {
                    seed,
                    matrix,
                    mutate: opts.mutate,
                    repro_dir: repro_dir.clone(),
                }) as Arc<dyn Job>
            })
            .collect();
        let cfg = CampaignConfig {
            workers: opts.workers,
            cache: cache.clone(),
            retries: 0,
            ..CampaignConfig::default()
        };
        let outcome = run_campaign(jobs, &cfg, &telemetry);
        for record in &outcome.records {
            checked += 1;
            if let titancfi_harness::JobStatus::Failed { error, .. } = &record.status {
                eprintln!("fuzz: DIVERGENCE {}\n{error}", record.label);
                divergent.push(record.label.clone());
            }
        }
        dispatched = hi - opts.seeds.start;
    }

    if opts.mutate {
        riscv_isa::predecode::set_mutate_skip_store_invalidation(false);
        if divergent.is_empty() {
            eprintln!(
                "fuzz: planted decode-cache bug was NOT caught over {checked} seeds — oracle is blind"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "fuzz: planted bug caught on {} of {checked} seeds; reproducers in {}",
            divergent.len(),
            repro_dir.display()
        );
        return ExitCode::SUCCESS;
    }
    if divergent.is_empty() {
        eprintln!("fuzz: {checked} seeds, zero divergences");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "fuzz: {} divergent seeds of {checked}: {}",
            divergent.len(),
            divergent.join(", ")
        );
        ExitCode::FAILURE
    }
}
