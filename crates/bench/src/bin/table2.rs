//! Regenerates the paper's Table II (slowdown vs DExIE / FIXER, depth 1).
fn main() {
    print!("{}", titancfi_bench::table2());
}
