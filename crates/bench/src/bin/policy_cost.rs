//! Per-policy firmware cycle-cost table: what each forward-edge policy of
//! the suite (shadow stack, Zicfilp landing pads, KCFI type hashes, all
//! three combined) costs per check in the RoT, for the IRQ and polling
//! firmware tops — the Table-I-style companion for the policy suite.
//!
//! ```text
//! cargo run --release -p titancfi-bench --bin policy_cost -- \
//!     --smoke --out BENCH_policy.json --baseline BENCH_policy.json
//! ```
//!
//! Every configuration replays the same benign commit-log sequence (direct
//! call, indirect call through an instrumented site, indirect jump to a
//! landing pad, and the LIFO-balanced returns) on the policy-suite firmware
//! and records per-class mean cycle costs. The costs are *simulated* RoT
//! cycles — fully deterministic, machine-portable, and therefore gateable:
//! `--baseline` compares against a previous report and fails when any
//! configuration's mean check cost grew by more than 10 %.
//!
//! The run doubles as a detection self-test: after measuring, each firmware
//! top replays a smashed jump, a type-confused call, and a hijacked return
//! under the combined policy and must flag all three.

use std::process::ExitCode;
use titancfi::firmware::{FirmwareKind, FirmwareRunner};
use titancfi::CommitLog;
use titancfi_harness::Json;

const USAGE: &str = "\
usage: policy_cost [options]

      --smoke         reduced lap count (CI smoke run)
      --out PATH      write the JSON report to PATH (default: BENCH_policy.json)
      --baseline P    compare mean check costs against a previous report;
                      fail on a >10% cost growth (skipped when P is absent)
  -h, --help          this text
";

struct Options {
    smoke: bool,
    out: String,
    baseline: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        out: "BENCH_policy.json".to_string(),
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => opts.out = args.next().ok_or("missing value for --out")?,
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("missing value for --baseline")?);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Which policy flags a configuration enables.
#[derive(Clone, Copy)]
struct PolicyConfig {
    name: &'static str,
    shadow_stack: bool,
    landing_pads: bool,
    kcfi: bool,
}

const POLICIES: [PolicyConfig; 5] = [
    PolicyConfig {
        name: "none",
        shadow_stack: false,
        landing_pads: false,
        kcfi: false,
    },
    PolicyConfig {
        name: "shadow-stack",
        shadow_stack: true,
        landing_pads: false,
        kcfi: false,
    },
    PolicyConfig {
        name: "landing-pad",
        shadow_stack: false,
        landing_pads: true,
        kcfi: false,
    },
    PolicyConfig {
        name: "kcfi",
        shadow_stack: false,
        landing_pads: false,
        kcfi: true,
    },
    PolicyConfig {
        name: "combined",
        shadow_stack: true,
        landing_pads: true,
        kcfi: true,
    },
];

/// Both firmware tops the suite is specified for (the optimized
/// interconnect only changes latency constants, not instruction counts).
const KINDS: [FirmwareKind; 2] = [FirmwareKind::Irq, FirmwareKind::Polling];

// The synthetic benign workload. `f1` is reached by a direct call, `f2` by
// an indirect call through a KCFI-instrumented site, `pad` by a plain
// indirect jump; both forward-edge targets are registered landing pads.
const F1: u64 = 0x8000_0100;
const F2: u64 = 0x8000_0200;
const PAD: u64 = 0x8000_0300;
const ICALL_SITE: u64 = 0x8000_0104;
const TYPE_HASH: u32 = 0xdead_4cfe;

/// `jal ra, f1` retired at 0x8000_0000.
fn log_call() -> CommitLog {
    CommitLog {
        pc: 0x8000_0000,
        insn: 0x1000_00ef,
        next: 0x8000_0004,
        target: F1,
    }
}

/// `jalr ra, t1, 0` at the instrumented site in `f1`, targeting `f2`.
fn log_icall() -> CommitLog {
    CommitLog {
        pc: ICALL_SITE,
        insn: 0x0003_00e7,
        next: ICALL_SITE + 4,
        target: F2,
    }
}

/// `jalr x0, a5, 0` inside `f2`, targeting the registered pad.
fn log_ijump() -> CommitLog {
    CommitLog {
        pc: 0x8000_0204,
        insn: 0x0007_8067,
        next: 0x8000_0208,
        target: PAD,
    }
}

/// `ret` after the pad, unwinding the indirect call (LIFO: pushed last).
fn log_ret_inner() -> CommitLog {
    CommitLog {
        pc: PAD + 4,
        insn: 0x0000_8067,
        next: PAD + 8,
        target: ICALL_SITE + 4,
    }
}

/// `ret` from `f1`, unwinding the direct call.
fn log_ret_outer() -> CommitLog {
    CommitLog {
        pc: F1 + 0xc,
        insn: 0x0000_8067,
        next: F1 + 0x10,
        target: 0x8000_0004,
    }
}

/// Boots the policy-suite firmware, provisions all tables (inert while the
/// matching flag is off), and enables exactly the configured policies.
fn provisioned_runner(kind: FirmwareKind, policy: PolicyConfig) -> FirmwareRunner {
    let mut fw = FirmwareRunner::new_policy(kind);
    fw.policy_register_landing_pad(F2);
    fw.policy_register_landing_pad(PAD);
    fw.policy_register_kcfi_site(ICALL_SITE, TYPE_HASH);
    fw.policy_register_kcfi_fn(F2, TYPE_HASH);
    if policy.shadow_stack {
        fw.policy_enable_shadow_stack();
    }
    if policy.landing_pads {
        fw.policy_enable_landing_pads();
    }
    if policy.kcfi {
        fw.policy_enable_kcfi();
    }
    fw
}

struct Row {
    policy: &'static str,
    firmware: &'static str,
    checks: u64,
    violations: u64,
    cycles_call: f64,
    cycles_icall: f64,
    cycles_ijump: f64,
    cycles_ret: f64,
    cycles_mean: f64,
}

/// Replays `laps` LIFO-balanced rounds of the benign sequence and averages
/// per-class check latencies. Costs are simulated cycles: deterministic
/// across repetitions, so no wall-clock laps or minima are needed.
fn measure(kind: FirmwareKind, policy: PolicyConfig, laps: u64) -> Row {
    let mut fw = provisioned_runner(kind, policy);
    let mut call = 0u64;
    let mut icall = 0u64;
    let mut ijump = 0u64;
    let mut ret = 0u64;
    let mut total = 0u64;
    for _ in 0..laps {
        let mc = fw.check(&log_call());
        let mi = fw.check(&log_icall());
        let mj = fw.check(&log_ijump());
        let mr1 = fw.check(&log_ret_inner());
        let mr2 = fw.check(&log_ret_outer());
        call += mc.latency;
        icall += mi.latency;
        ijump += mj.latency;
        ret += mr1.latency + mr2.latency;
        total += mc.latency + mi.latency + mj.latency + mr1.latency + mr2.latency;
    }
    assert_eq!(
        fw.violations,
        0,
        "benign sequence flagged under {}/{}",
        policy.name,
        kind.name()
    );
    let laps_f = laps as f64;
    Row {
        policy: policy.name,
        firmware: kind.name(),
        checks: fw.checks,
        violations: fw.violations,
        cycles_call: call as f64 / laps_f,
        cycles_icall: icall as f64 / laps_f,
        cycles_ijump: ijump as f64 / laps_f,
        cycles_ret: ret as f64 / (2.0 * laps_f),
        cycles_mean: total as f64 / (5.0 * laps_f),
    }
}

/// Detection self-test: the combined policy must flag a smashed jump table
/// entry (landing pad miss), a type-confused indirect call (hash mismatch),
/// and a hijacked return (shadow-stack mismatch).
fn detection_self_test(kind: FirmwareKind) -> Result<(), String> {
    let all = PolicyConfig {
        name: "combined",
        shadow_stack: true,
        landing_pads: true,
        kcfi: true,
    };

    let mut fw = provisioned_runner(kind, all);
    let smashed = CommitLog {
        target: PAD + 0x40, // not a registered pad
        ..log_ijump()
    };
    if !fw.check(&smashed).violation {
        return Err(format!("{}: smashed jump not flagged", kind.name()));
    }

    let mut fw = provisioned_runner(kind, all);
    // A correctly padded function of the wrong type: registered as a pad
    // but carrying a different hash — the landing pad passes, KCFI fires.
    fw.policy_register_landing_pad(0x8000_0400);
    fw.policy_register_kcfi_fn(0x8000_0400, TYPE_HASH ^ 1);
    let confused = CommitLog {
        target: 0x8000_0400,
        ..log_icall()
    };
    if !fw.check(&confused).violation {
        return Err(format!("{}: type-confused call not flagged", kind.name()));
    }

    let mut fw = provisioned_runner(kind, all);
    if fw.check(&log_call()).violation {
        return Err(format!("{}: benign call flagged", kind.name()));
    }
    let hijacked = CommitLog {
        target: 0xbad0_0bad,
        ..log_ret_outer()
    };
    if !fw.check(&hijacked).violation {
        return Err(format!("{}: hijacked return not flagged", kind.name()));
    }
    Ok(())
}

/// Report schema (v1): per `{policy, firmware}` configuration the mean
/// simulated check cost per control-flow class and overall. All values are
/// deterministic simulated cycles — comparable across machines.
fn report_json(mode: &str, rows: &[Row]) -> Json {
    Json::obj(vec![
        ("schema", Json::Num(1.0)),
        ("mode", Json::Str(mode.to_string())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("policy", Json::Str(r.policy.to_string())),
                            ("firmware", Json::Str(r.firmware.to_string())),
                            ("checks", Json::Num(r.checks as f64)),
                            ("violations", Json::Num(r.violations as f64)),
                            ("cycles_call", Json::Num(r.cycles_call)),
                            ("cycles_icall", Json::Num(r.cycles_icall)),
                            ("cycles_ijump", Json::Num(r.cycles_ijump)),
                            ("cycles_ret", Json::Num(r.cycles_ret)),
                            ("cycles_mean", Json::Num(r.cycles_mean)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Cost-growth tolerance for the baseline gate: simulated cycles are
/// deterministic, so 10 % headroom only absorbs deliberate small firmware
/// edits — anything beyond it is a real policy-cost regression.
const GROWTH_TOLERANCE: f64 = 1.10;

/// Compares per-configuration mean check costs against a previous report.
/// Configurations absent from the baseline are warned about, and a baseline
/// matching *zero* rows is itself a failure (stale or corrupt file).
fn regressions(baseline: &Json, rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    let Some(base_rows) = baseline.get("rows").and_then(Json::as_arr) else {
        out.push("baseline has no `rows` array — regenerate it".to_string());
        return out;
    };
    let mut matched = 0usize;
    for row in rows {
        let base = base_rows.iter().find(|b| {
            b.get("policy").and_then(Json::as_str) == Some(row.policy)
                && b.get("firmware").and_then(Json::as_str) == Some(row.firmware)
        });
        let Some(base_mean) = base
            .and_then(|b| b.get("cycles_mean"))
            .and_then(Json::as_num)
        else {
            eprintln!(
                "policy_cost: WARNING {}/{} missing from baseline — not gated",
                row.policy, row.firmware
            );
            continue;
        };
        matched += 1;
        if row.cycles_mean > GROWTH_TOLERANCE * base_mean {
            out.push(format!(
                "{}/{}: mean check cost {:.1} cycles > 110% of baseline {:.1}",
                row.policy, row.firmware, row.cycles_mean, base_mean
            ));
        }
    }
    if matched == 0 {
        out.push(
            "baseline matched zero configurations — the gate checked nothing; regenerate it"
                .to_string(),
        );
    }
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("policy_cost: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Read the baseline up front: CI passes the same path for --baseline
    // and --out, so it must be consumed before the report overwrites it.
    let baseline = opts.baseline.as_deref().and_then(|path| {
        let text = std::fs::read_to_string(path).ok()?;
        match Json::parse(&text) {
            Ok(json) => Some(json),
            Err(e) => {
                eprintln!("policy_cost: ignoring unparseable baseline {path}: {e}");
                None
            }
        }
    });

    let laps: u64 = if opts.smoke { 2 } else { 16 };
    let mode = if opts.smoke { "smoke" } else { "full" };
    println!("per-policy firmware check cost ({mode}, {laps} laps/config, simulated cycles)");
    println!(
        "{:<14} {:<9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "policy", "firmware", "call", "icall", "ijump", "ret", "mean"
    );
    let mut rows = Vec::new();
    for kind in KINDS {
        for policy in POLICIES {
            let row = measure(kind, policy, laps);
            println!(
                "{:<14} {:<9} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
                row.policy,
                row.firmware,
                row.cycles_call,
                row.cycles_icall,
                row.cycles_ijump,
                row.cycles_ret,
                row.cycles_mean
            );
            rows.push(row);
        }
    }

    for kind in KINDS {
        if let Err(msg) = detection_self_test(kind) {
            eprintln!("policy_cost: DETECTION SELF-TEST FAILED: {msg}");
            return ExitCode::FAILURE;
        }
    }
    println!("detection self-test: smashed jump, confused call, hijacked return all flagged");

    let json = report_json(mode, &rows);
    if let Err(e) = std::fs::write(&opts.out, json.encode() + "\n") {
        eprintln!("policy_cost: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);

    match baseline {
        Some(base) => {
            let regressed = regressions(&base, &rows);
            if !regressed.is_empty() {
                for r in &regressed {
                    eprintln!("policy_cost: REGRESSION {r}");
                }
                return ExitCode::FAILURE;
            }
            println!("mean check costs within 10% of baseline");
        }
        None => println!("no baseline report — regression gate skipped"),
    }
    ExitCode::SUCCESS
}
