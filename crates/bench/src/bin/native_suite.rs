//! The native-suite experiment: every assembly kernel in this repository
//! runs on the CVA6 model, its real commit trace feeds the queue model at
//! the three firmware latencies, and the result is a Table-III-style sweep
//! computed from *executed code* instead of calibrated synthetic traces.
//!
//! This is the reproduction's own evaluation — complementary to `table3`,
//! which regenerates the paper's numbers from its published statistics.
//! `--bin campaign` runs the same kernels as parallel jobs.

fn main() {
    print!("{}", titancfi_bench::native_suite_text());
}
