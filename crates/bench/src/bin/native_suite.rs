//! The native-suite experiment: every assembly kernel in this repository
//! runs on the CVA6 model, its real commit trace feeds the queue model at
//! the three firmware latencies, and the result is a Table-III-style sweep
//! computed from *executed code* instead of calibrated synthetic traces.
//!
//! This is the reproduction's own evaluation — complementary to `table3`,
//! which regenerates the paper's numbers from its published statistics.

use cva6_model::{Cva6Core, Halt, TimingConfig};
use titancfi_trace::{simulate, Trace};
use titancfi_workloads::kernels::{all_kernels, KERNEL_MEM};
use titancfi_workloads::published::{
    LATENCY_IRQ, LATENCY_OPT, LATENCY_POLL, TABLE3_QUEUE_DEPTH,
};

fn main() {
    println!("Native kernel suite under the TitanCFI trace model (queue depth {TABLE3_QUEUE_DEPTH})");
    println!(
        "{:<14} {:>10} {:>8} {:>9} | {:>7} {:>7} {:>7}",
        "Kernel", "Cycles", "CF", "CF/kcyc", "Opt.", "Poll.", "IRQ"
    );
    println!("{}", "-".repeat(74));
    for kernel in all_kernels() {
        let prog = kernel.program().expect("kernel assembles");
        let mut core = Cva6Core::new(&prog, KERNEL_MEM, TimingConfig::default());
        let (commits, halt) = core.run(500_000_000);
        assert_eq!(halt, Halt::Breakpoint, "{} halts", kernel.name);
        let trace = Trace::from_commits(&commits, core.cycle());
        let density = trace.cf_count() as f64 * 1000.0 / core.cycle() as f64;
        let sd = [LATENCY_OPT, LATENCY_POLL, LATENCY_IRQ]
            .map(|lat| simulate(&trace, lat, TABLE3_QUEUE_DEPTH).slowdown_percent());
        let fmt = |v: f64| {
            if v < 0.5 {
                "-".to_string()
            } else {
                format!("{v:.0}")
            }
        };
        println!(
            "{:<14} {:>10} {:>8} {:>9.2} | {:>7} {:>7} {:>7}",
            kernel.name,
            core.cycle(),
            trace.cf_count(),
            density,
            fmt(sd[0]),
            fmt(sd[1]),
            fmt(sd[2]),
        );
    }
    println!("\nKernels are this repo's own assembly implementations (see");
    println!("crates/workloads); traces come from actual execution on the CVA6 model.");
}
