//! Fleet saturation benchmark: devices × commit-logs/sec.
//!
//! ```text
//! cargo run --release -p titancfi-bench --bin fleet -- \
//!     --smoke --out BENCH_fleet.json
//! ```
//!
//! Sweeps the fleet service over increasing device counts (the full sweep
//! tops out above 1000 simulated SoCs) and records, per count, the
//! commit-log ingest rate the monitor sustained, with the wire protocol's
//! loss accounting alongside. The integrity gate is absolute: a single
//! lost, corrupt, duplicated or gapped frame — or a device left undrained
//! at shutdown — fails the run with a nonzero exit, at every swept count.

use std::process::ExitCode;
use std::sync::Arc;
use titancfi_fleet::{
    call_dense_workload, run_fleet, FleetConfig, FleetReport, SocDevice, SocDeviceConfig,
};
use titancfi_harness::Json;

const USAGE: &str = "\
usage: fleet [options]

      --smoke         small device counts (CI smoke run)
      --out PATH      write the JSON report to PATH (default: BENCH_fleet.json)
  -h, --help          this text
";

struct Options {
    smoke: bool,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        out: "BENCH_fleet.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => opts.out = args.next().ok_or("missing value for --out")?,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn shard_count() -> usize {
    // One shard per core, minus one for the ingest loop, clamped to a
    // useful range.
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(2)
        .clamp(2, 8)
}

fn run_point(devices: u32, passes: u64, shards: usize) -> FleetReport {
    let program = Arc::new(call_dense_workload(4));
    let config = FleetConfig {
        devices,
        shards,
        passes,
        transport_capacity: 64,
        ..FleetConfig::default()
    };
    run_fleet(&config, move |_, seq, tx| {
        Box::new(SocDevice::new(
            SocDeviceConfig::new(Arc::clone(&program)),
            tx,
            seq,
        ))
    })
}

/// Integrity failures in one report, rendered for the gate.
fn integrity_failures(r: &FleetReport) -> Vec<String> {
    let mut out = Vec::new();
    if r.frames_lost > 0 {
        out.push(format!("{} frames lost", r.frames_lost));
    }
    if r.frames_corrupt > 0 {
        out.push(format!("{} frames corrupt", r.frames_corrupt));
    }
    if r.seq_duplicates > 0 {
        out.push(format!("{} duplicate seqs", r.seq_duplicates));
    }
    if r.seq_gaps > 0 {
        out.push(format!("{} seq gaps", r.seq_gaps));
    }
    if r.undrained_devices > 0 {
        out.push(format!("{} undrained devices", r.undrained_devices));
    }
    if r.supervision.permanent_failures > 0 {
        out.push(format!(
            "{} unreaped (permanently failed) devices",
            r.supervision.permanent_failures
        ));
    }
    out
}

fn row_json(r: &FleetReport) -> Json {
    Json::obj(vec![
        ("devices", Json::Num(f64::from(r.devices))),
        ("shards", Json::Num(r.shards as f64)),
        ("frames_ok", Json::Num(r.frames_ok as f64)),
        ("logs_per_sec", Json::Num(r.logs_per_second())),
        ("wall_ms", Json::Num(r.wall_seconds * 1e3)),
        ("sim_cycles", Json::Num(r.sim_cycles as f64)),
        ("turns", Json::Num(r.turns as f64)),
        (
            "completed_runs",
            Json::Num(r.supervision.completed_runs as f64),
        ),
        ("send_stalls", Json::Num(r.send_stalls as f64)),
        ("steals", Json::Num(r.steals as f64)),
        ("frames_lost", Json::Num(r.frames_lost as f64)),
        ("frames_corrupt", Json::Num(r.frames_corrupt as f64)),
        ("seq_duplicates", Json::Num(r.seq_duplicates as f64)),
        ("seq_gaps", Json::Num(r.seq_gaps as f64)),
        (
            "undrained_devices",
            Json::Num(f64::from(r.undrained_devices)),
        ),
        (
            "per_backend",
            Json::Arr(
                r.per_backend
                    .iter()
                    .map(|(kind, s)| {
                        Json::obj(vec![
                            ("backend", Json::Str(kind.name().to_string())),
                            ("sent", Json::Num(s.sent as f64)),
                            ("received", Json::Num(s.received as f64)),
                            ("corrupt", Json::Num(s.corrupt as f64)),
                            ("would_block", Json::Num(s.would_block as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("fleet: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Passes shrink as device counts grow so every point does comparable
    // total work and the sweep measures *scaling*, not just more work.
    let sweep: Vec<(u32, u64)> = if opts.smoke {
        vec![(8, 200), (32, 100)]
    } else {
        vec![(16, 800), (64, 400), (256, 150), (1024, 60)]
    };
    let shards = shard_count();
    let mode = if opts.smoke { "smoke" } else { "full" };
    println!("fleet saturation ({mode}, {shards} shards + 1 ingest)");

    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for &(devices, passes) in &sweep {
        let report = run_point(devices, passes, shards);
        println!(
            "{:>5} devices  {:>9} logs  {:>12.0} logs/s  {:>9.0} ms  {:>6} runs  {:>7} stalls  {:>4} steals  {}",
            report.devices,
            report.frames_ok,
            report.logs_per_second(),
            report.wall_seconds * 1e3,
            report.supervision.completed_runs,
            report.send_stalls,
            report.steals,
            if integrity_failures(&report).is_empty() {
                "ok"
            } else {
                "INTEGRITY FAIL"
            },
        );
        for failure in integrity_failures(&report) {
            failures.push(format!("{} devices: {failure}", report.devices));
        }
        rows.push(row_json(&report));
    }

    let json = Json::obj(vec![
        ("schema", Json::Num(1.0)),
        ("mode", Json::Str(mode.to_string())),
        ("shards", Json::Num(shards as f64)),
        ("rows", Json::Arr(rows)),
    ]);
    if let Err(e) = std::fs::write(&opts.out, json.encode() + "\n") {
        eprintln!("fleet: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("fleet: INTEGRITY {f}");
        }
        return ExitCode::FAILURE;
    }
    println!("every swept count lossless (integrity word verified at ingest)");
    ExitCode::SUCCESS
}
