//! Fleet saturation benchmark: devices × commit-logs/sec.
//!
//! ```text
//! cargo run --release -p titancfi-bench --bin fleet -- \
//!     --smoke --out BENCH_fleet.json --baseline BENCH_fleet.json
//! ```
//!
//! Sweeps the fleet service over increasing device counts (the full sweep
//! tops out above 1000 simulated SoCs) and records, per count, the
//! commit-log ingest rate the monitor sustained, with the wire protocol's
//! loss accounting alongside.
//!
//! **Hermetic points.** Every sweep point runs in a fresh child process
//! (the binary re-execs itself with the hidden `--point` flag). A
//! thousand-device fleet leaves ~half a gigabyte of allocator state
//! behind; measured in-process, later points inherit the earlier points'
//! arena fragmentation and their recycle churn degenerates into
//! madvise/refault storms that have nothing to do with the service being
//! measured. One process per point gives every row the same clean heap.
//! An untimed warmup point runs first so lazily-backed VM memory is
//! host-resident before anything is timed, and each point takes the best
//! of two runs to shed residual single-CPU scheduling noise.
//!
//! Three gates, each a nonzero exit:
//!
//! * **Integrity** (absolute): a single lost, corrupt, duplicated or
//!   gapped frame — or a device left undrained at shutdown — fails the
//!   run, at every swept count and on *every* run including discarded
//!   timing samples.
//! * **Scaling** (every sweep): every row's logs/s must stay at or above
//!   the smallest-fleet row (within [`SCALING_TOLERANCE`]). The service
//!   inverse-scaled once — 29.4k logs/s at 16 devices collapsing to 7.4k
//!   at 256 — and that smell must never return.
//! * **Baseline** (`--baseline`): per-device-count logs/s must stay within
//!   [`REGRESSED_TOLERANCE`] of a previous report, so CI can pin the
//!   committed BENCH_fleet.json as a floor.

use std::process::ExitCode;
use std::sync::Arc;
use titancfi_fleet::{
    call_dense_workload, run_fleet, FleetConfig, FleetReport, SocDevice, SocDeviceConfig,
};
use titancfi_harness::Json;

const USAGE: &str = "\
usage: fleet [options]

      --smoke         small device counts (CI smoke run)
      --out PATH      write the JSON report to PATH (default: BENCH_fleet.json)
      --shards N      worker shard count (default: one per core, clamped 2..8)
      --baseline P    compare logs/s per device count against a previous
                      report; fail on regression beyond 20%
  -h, --help          this text
";

struct Options {
    smoke: bool,
    out: String,
    shards: Option<usize>,
    baseline: Option<String>,
    /// Hidden hermetic-child mode: run one `devices:passes` point in this
    /// process and print its row JSON as the only stdout line.
    point: Option<(u32, u64)>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        out: "BENCH_fleet.json".to_string(),
        shards: None,
        baseline: None,
        point: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => opts.out = args.next().ok_or("missing value for --out")?,
            "--shards" => {
                let value = args.next().ok_or("missing value for --shards")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --shards `{value}`"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                opts.shards = Some(n);
            }
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("missing value for --baseline")?);
            }
            "--point" => {
                let value = args.next().ok_or("missing value for --point")?;
                let (d, p) = value
                    .split_once(':')
                    .ok_or_else(|| format!("--point wants devices:passes, got `{value}`"))?;
                opts.point = Some((
                    d.parse()
                        .map_err(|_| format!("invalid --point `{value}`"))?,
                    p.parse()
                        .map_err(|_| format!("invalid --point `{value}`"))?,
                ));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn shard_count() -> usize {
    // One worker shard per core (workers both simulate and ingest now —
    // there is no dedicated ingest thread to reserve a core for), clamped
    // to a useful range.
    std::thread::available_parallelism()
        .map_or(2, std::num::NonZeroUsize::get)
        .clamp(2, 8)
}

/// Outer loops in the guest workload. Long enough that steady-state
/// streaming dominates each supervised run (a run spans ~50 poll slices)
/// while clean completions — and the recycle path they exercise — still
/// occur at every swept device count.
const WORKLOAD_LOOPS: u32 = 64;

fn run_point(devices: u32, passes: u64, shards: usize) -> FleetReport {
    let program = Arc::new(call_dense_workload(WORKLOAD_LOOPS));
    let config = FleetConfig {
        devices,
        shards,
        passes,
        transport_capacity: 64,
        ..FleetConfig::default()
    };
    run_fleet(&config, move |_, seq, tx| {
        Box::new(SocDevice::new(
            SocDeviceConfig::new(Arc::clone(&program)),
            tx,
            seq,
        ))
    })
}

/// Timing samples per sweep point; the best (highest logs/s) is recorded.
/// Integrity is enforced on every sample, kept or discarded.
const SAMPLES_PER_POINT: usize = 2;

/// Spawns this binary back on itself to run one point hermetically.
/// Returns the child's row JSON.
fn run_point_hermetic(devices: u32, passes: u64, shards: usize) -> Result<Json, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let output = std::process::Command::new(exe)
        .arg("--point")
        .arg(format!("{devices}:{passes}"))
        .arg("--shards")
        .arg(shards.to_string())
        .output()
        .map_err(|e| format!("spawn point child: {e}"))?;
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .last()
        .ok_or_else(|| format!("{devices}-device child produced no output"))?;
    let row = Json::parse(line)
        .map_err(|e| format!("{devices}-device child row unparseable: {e} in `{line}`"))?;
    if !output.status.success() {
        let failures: Vec<String> = row_failures(&row);
        return Err(format!(
            "{devices}-device child failed ({}): {}",
            output.status,
            if failures.is_empty() {
                String::from_utf8_lossy(&output.stderr).trim().to_string()
            } else {
                failures.join(", ")
            }
        ));
    }
    Ok(row)
}

/// Logs/s tolerance for the `--baseline` gate: anything within 20% of the
/// previous report is measurement noise, anything beyond it is a real
/// throughput regression (the same band the throughput bench uses).
const REGRESSED_TOLERANCE: f64 = 0.8;

/// Tolerance for the monotone-scaling gate: every row must sustain at
/// least 90% of the smallest fleet's logs/s. The band is tighter than the
/// baseline gate's because both numbers come from the *same* run — no
/// cross-run machine variance to absorb, only scheduler wobble.
const SCALING_TOLERANCE: f64 = 0.9;

/// The inverse-scaling gate: every row's logs/s must hold the smallest
/// fleet's rate (within [`SCALING_TOLERANCE`]). Monitors that serialize
/// ingest collapse superlinearly with fleet size; this catches the smell
/// whatever the absolute numbers are.
fn scaling_failures(points: &[(u32, f64)]) -> Vec<String> {
    let Some(&(first_devices, first_rate)) = points.first() else {
        return Vec::new();
    };
    points
        .iter()
        .skip(1)
        .filter(|&&(_, rate)| rate < first_rate * SCALING_TOLERANCE)
        .map(|&(devices, rate)| {
            format!(
                "{devices} devices: {rate:.0} logs/s < {:.0}% of the \
                 {first_devices}-device row ({first_rate:.0} logs/s) — inverse scaling",
                SCALING_TOLERANCE * 100.0
            )
        })
        .collect()
}

/// The `--baseline` gate: per-device-count logs/s against a previous
/// report. Counts absent from the baseline are warned about (a changed
/// sweep must not silently shrink the gate); a baseline matching zero
/// rows is itself a failure.
fn baseline_failures(baseline: &Json, points: &[(u32, f64)]) -> Vec<String> {
    let mut out = Vec::new();
    let Some(base_rows) = baseline.get("rows").and_then(Json::as_arr) else {
        out.push("baseline has no `rows` array — regenerate it".to_string());
        return out;
    };
    let base: Vec<(u32, f64)> = base_rows
        .iter()
        .filter_map(|row| {
            let devices = row.get("devices").and_then(Json::as_num)? as u32;
            let rate = row.get("logs_per_sec").and_then(Json::as_num)?;
            Some((devices, rate))
        })
        .collect();
    let mut matched = 0;
    for &(devices, rate) in points {
        let Some(&(_, base_rate)) = base.iter().find(|&&(d, _)| d == devices) else {
            eprintln!("fleet: WARNING {devices} devices missing from baseline — not gated");
            continue;
        };
        matched += 1;
        if rate < base_rate * REGRESSED_TOLERANCE {
            out.push(format!(
                "{devices} devices: {rate:.0} logs/s < 80% of baseline {base_rate:.0} logs/s"
            ));
        }
    }
    if matched == 0 {
        out.push(
            "baseline matched zero device counts — the gate checked nothing; regenerate the \
             baseline"
                .to_string(),
        );
    }
    out
}

/// Integrity failures in one report, rendered for the gate.
fn integrity_failures(r: &FleetReport) -> Vec<String> {
    let mut out = Vec::new();
    if r.frames_lost > 0 {
        out.push(format!("{} frames lost", r.frames_lost));
    }
    if r.frames_corrupt > 0 {
        out.push(format!("{} frames corrupt", r.frames_corrupt));
    }
    if r.seq_duplicates > 0 {
        out.push(format!("{} duplicate seqs", r.seq_duplicates));
    }
    if r.seq_gaps > 0 {
        out.push(format!("{} seq gaps", r.seq_gaps));
    }
    if r.undrained_devices > 0 {
        out.push(format!("{} undrained devices", r.undrained_devices));
    }
    if r.supervision.permanent_failures > 0 {
        out.push(format!(
            "{} unreaped (permanently failed) devices",
            r.supervision.permanent_failures
        ));
    }
    out
}

/// Integrity failures re-derived from a row JSON (the hermetic parent's
/// view of a child's report).
fn row_failures(row: &Json) -> Vec<String> {
    let field = |name: &str| row.get(name).and_then(Json::as_num).unwrap_or(0.0) as u64;
    let mut out = Vec::new();
    for (name, what) in [
        ("frames_lost", "frames lost"),
        ("frames_corrupt", "frames corrupt"),
        ("seq_duplicates", "duplicate seqs"),
        ("seq_gaps", "seq gaps"),
        ("undrained_devices", "undrained devices"),
        (
            "permanent_failures",
            "unreaped (permanently failed) devices",
        ),
    ] {
        let n = field(name);
        if n > 0 {
            out.push(format!("{n} {what}"));
        }
    }
    out
}

fn row_json(r: &FleetReport) -> Json {
    Json::obj(vec![
        ("devices", Json::Num(f64::from(r.devices))),
        ("shards", Json::Num(r.shards as f64)),
        ("frames_ok", Json::Num(r.frames_ok as f64)),
        ("logs_per_sec", Json::Num(r.logs_per_second())),
        ("boot_ms", Json::Num(r.boot_seconds * 1e3)),
        ("wall_ms", Json::Num(r.wall_seconds * 1e3)),
        ("sim_cycles", Json::Num(r.sim_cycles as f64)),
        ("turns", Json::Num(r.turns as f64)),
        (
            "completed_runs",
            Json::Num(r.supervision.completed_runs as f64),
        ),
        (
            "permanent_failures",
            Json::Num(r.supervision.permanent_failures as f64),
        ),
        ("send_stalls", Json::Num(r.send_stalls as f64)),
        ("steals", Json::Num(r.steals as f64)),
        ("frames_lost", Json::Num(r.frames_lost as f64)),
        ("frames_corrupt", Json::Num(r.frames_corrupt as f64)),
        ("seq_duplicates", Json::Num(r.seq_duplicates as f64)),
        ("seq_gaps", Json::Num(r.seq_gaps as f64)),
        (
            "undrained_devices",
            Json::Num(f64::from(r.undrained_devices)),
        ),
        (
            "per_backend",
            Json::Arr(
                r.per_backend
                    .iter()
                    .map(|(kind, s)| {
                        Json::obj(vec![
                            ("backend", Json::Str(kind.name().to_string())),
                            ("sent", Json::Num(s.sent as f64)),
                            ("received", Json::Num(s.received as f64)),
                            ("corrupt", Json::Num(s.corrupt as f64)),
                            ("would_block", Json::Num(s.would_block as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("fleet: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Hermetic-child mode: one point, row JSON on stdout, exit code is the
    // integrity verdict. Everything else stays in the parent.
    if let Some((devices, passes)) = opts.point {
        let shards = opts.shards.unwrap_or_else(shard_count);
        let report = run_point(devices, passes, shards);
        let failures = integrity_failures(&report);
        println!("{}", row_json(&report).encode());
        for failure in &failures {
            eprintln!("fleet: INTEGRITY {devices} devices: {failure}");
        }
        return if failures.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // Passes shrink as device counts grow so every point does comparable
    // total work and the sweep measures *scaling*, not just more work.
    let sweep: Vec<(u32, u64)> = if opts.smoke {
        vec![(8, 200), (32, 100)]
    } else {
        vec![(16, 800), (64, 400), (256, 150), (1024, 60)]
    };
    let shards = opts.shards.unwrap_or_else(shard_count);
    let mode = if opts.smoke { "smoke" } else { "full" };
    println!("fleet saturation ({mode}, {shards} worker shards, sharded ingest, hermetic points)");

    // Read the baseline up front: CI passes the same path for --baseline
    // and --out, so it must be parsed before the new report overwrites it.
    let baseline = opts
        .baseline
        .as_deref()
        .and_then(|path| match std::fs::read_to_string(path) {
            Ok(text) => match Json::parse(&text) {
                Ok(json) => Some(json),
                Err(e) => {
                    eprintln!("fleet: ignoring unparseable baseline {path}: {e}");
                    None
                }
            },
            Err(e) => {
                eprintln!("fleet: ignoring unreadable baseline {path}: {e}");
                None
            }
        });

    // Untimed warmup at the largest count: fault the VM's lazily-backed
    // memory host-resident once so no timed point pays first-touch costs.
    let &(warm_devices, warm_passes) = sweep.last().expect("sweep is never empty");
    if let Err(e) = run_point_hermetic(warm_devices, warm_passes.div_ceil(2).max(1), shards) {
        eprintln!("fleet: {e}");
        return ExitCode::FAILURE;
    }

    let mut rows = Vec::new();
    let mut points: Vec<(u32, f64)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for &(devices, passes) in &sweep {
        let mut best: Option<Json> = None;
        for _ in 0..SAMPLES_PER_POINT {
            let row = match run_point_hermetic(devices, passes, shards) {
                Ok(row) => row,
                Err(e) => {
                    eprintln!("fleet: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for failure in row_failures(&row) {
                failures.push(format!("INTEGRITY {devices} devices: {failure}"));
            }
            let rate = |r: &Json| r.get("logs_per_sec").and_then(Json::as_num).unwrap_or(0.0);
            if best.as_ref().is_none_or(|b| rate(&row) > rate(b)) {
                best = Some(row);
            }
        }
        let row = best.expect("at least one sample per point");
        let field = |name: &str| row.get(name).and_then(Json::as_num).unwrap_or(0.0);
        println!(
            "{:>5} devices  {:>9} logs  {:>12.0} logs/s  {:>9.0} ms  {:>6} runs  {:>7} stalls  {:>4} steals  {}",
            devices,
            field("frames_ok") as u64,
            field("logs_per_sec"),
            field("wall_ms"),
            field("completed_runs") as u64,
            field("send_stalls") as u64,
            field("steals") as u64,
            if row_failures(&row).is_empty() {
                "ok"
            } else {
                "INTEGRITY FAIL"
            },
        );
        points.push((devices, field("logs_per_sec")));
        rows.push(row);
    }

    // The scaling gate runs on every sweep (the smoke sweep's two points
    // gate too — cheap CI coverage for the same smell).
    for failure in scaling_failures(&points) {
        failures.push(format!("SCALING {failure}"));
    }
    if let Some(baseline) = &baseline {
        for failure in baseline_failures(baseline, &points) {
            failures.push(format!("BASELINE {failure}"));
        }
    }

    let json = Json::obj(vec![
        ("schema", Json::Num(2.0)),
        ("mode", Json::Str(mode.to_string())),
        ("shards", Json::Num(shards as f64)),
        ("rows", Json::Arr(rows)),
    ]);
    if let Err(e) = std::fs::write(&opts.out, json.encode() + "\n") {
        eprintln!("fleet: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("fleet: {f}");
        }
        return ExitCode::FAILURE;
    }
    println!("every swept count lossless (integrity word verified at ingest), scaling monotone");
    ExitCode::SUCCESS
}
