//! The fault-injection campaign driver: runs seeded fault scenarios
//! through the worker pool and prints the per-class detection / recovery
//! matrix.
//!
//! ```text
//! cargo run --release -p titancfi-bench --bin faults -- --smoke
//! ```
//!
//! Exit status is nonzero if any injected fault was neither detected nor
//! recovered, or any scenario hung (exhausted its cycle budget) — which is
//! what the CI smoke step keys on. Scenarios are deterministic per
//! (kernel, class, rate, seed, policy) and cached like the table campaign.

use std::path::PathBuf;
use std::process::ExitCode;

use titancfi::FailPolicy;
use titancfi_bench::fault_campaign::FaultPlan;
use titancfi_harness::{run_campaign, CampaignConfig, ResultCache, Telemetry, TelemetrySink};

const USAGE: &str = "\
usage: faults [options]

  -j, --jobs N        worker threads (default: all cores)
      --smoke         small fixed grid (1 kernel, 1 seed, both policies)
      --kernels LIST  comma-separated kernel names (default: fib,dispatch)
      --seeds LIST    comma-separated seeds (default: 11,12,13)
      --out P         also write the matrix to file P
      --verbose       include the per-scenario detail table
      --no-cache      disable the on-disk result cache
      --cache-dir P   cache directory (default: target/campaign-cache)
      --telemetry P   write a JSONL event stream to P ('-' for stderr)
  -h, --help          this text
";

const DEFAULT_KERNELS: [&str; 2] = ["fib", "dispatch"];
const DEFAULT_SEEDS: [u64; 3] = [11, 12, 13];

struct Options {
    workers: usize,
    smoke: bool,
    kernels: Vec<&'static str>,
    seeds: Vec<u64>,
    out: Option<PathBuf>,
    verbose: bool,
    cache: bool,
    cache_dir: PathBuf,
    telemetry: Option<String>,
}

/// Resolves a user-supplied kernel name to the static name in the kernel
/// registry (jobs carry `&'static str`).
fn static_kernel_name(name: &str) -> Result<&'static str, String> {
    titancfi_workloads::all_kernels()
        .map(|k| k.name)
        .find(|n| *n == name)
        .ok_or_else(|| format!("unknown kernel `{name}`"))
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        smoke: false,
        kernels: DEFAULT_KERNELS.to_vec(),
        seeds: DEFAULT_SEEDS.to_vec(),
        out: None,
        verbose: false,
        cache: true,
        cache_dir: PathBuf::from("target/campaign-cache"),
        telemetry: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-j" | "--jobs" => {
                let v = args.next().ok_or("missing value for -j")?;
                opts.workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--smoke" => opts.smoke = true,
            "--kernels" => {
                let v = args.next().ok_or("missing value for --kernels")?;
                opts.kernels = v
                    .split(',')
                    .map(static_kernel_name)
                    .collect::<Result<_, _>>()?;
            }
            "--seeds" => {
                let v = args.next().ok_or("missing value for --seeds")?;
                opts.seeds = v
                    .split(',')
                    .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().ok_or("missing value for --out")?));
            }
            "--verbose" => opts.verbose = true,
            "--no-cache" => opts.cache = false,
            "--cache-dir" => {
                opts.cache_dir = PathBuf::from(args.next().ok_or("missing value for --cache-dir")?);
            }
            "--telemetry" => {
                opts.telemetry = Some(args.next().ok_or("missing value for --telemetry")?);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("faults: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let plan = if opts.smoke {
        FaultPlan::smoke()
    } else {
        FaultPlan::build(
            &opts.kernels,
            &opts.seeds,
            &[FailPolicy::FailClosed, FailPolicy::FailOpen],
        )
    };
    eprintln!("faults: {} scenarios", plan.len());

    let cache = if opts.cache {
        match ResultCache::open(&opts.cache_dir) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!(
                    "faults: cannot open cache {}: {e}",
                    opts.cache_dir.display()
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let sink = match opts.telemetry.as_deref() {
        None => TelemetrySink::Null,
        Some("-") => TelemetrySink::Stderr,
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => TelemetrySink::File(f),
            Err(e) => {
                eprintln!("faults: cannot open telemetry file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let telemetry = Telemetry::new(sink);

    let cfg = CampaignConfig {
        workers: opts.workers,
        cache,
        ..CampaignConfig::default()
    };
    let outcome = run_campaign(plan.jobs(), &cfg, &telemetry);
    let matrix = plan.assemble(&outcome);
    let text = matrix.render(opts.verbose);
    print!("{text}");
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("faults: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    eprint!("{}", outcome.report.render());

    if matrix.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
