//! Simulator-throughput benchmark: simulated-cycles/sec and retired
//! instructions/sec across representative kernels, with the predecode +
//! quantum-batching fast path on and off.
//!
//! ```text
//! cargo run --release -p titancfi-bench --bin throughput -- \
//!     --smoke --out BENCH_throughput.json --baseline BENCH_throughput.json
//! ```
//!
//! Every scenario runs twice — fast path off, then on — and the two runs
//! must produce byte-identical result fingerprints (halt reason, cycle
//! counts, filter statistics, violations). A mismatch is a correctness bug
//! and exits nonzero. The JSON report records per-scenario speedup, which
//! is machine-portable; `--baseline` compares against a previous report and
//! fails if any scenario's speedup regressed by more than 20 %.

use std::process::ExitCode;
use std::time::Instant;
use titancfi_harness::Json;
use titancfi_soc::{DualHostSoc, SocConfig, SystemOnChip};
use titancfi_workloads::kernels::{all_kernels, Kernel, KERNEL_MEM};

const USAGE: &str = "\
usage: throughput [options]

      --smoke         reduced cycle budgets (CI smoke run)
      --out PATH      write the JSON report to PATH (default: BENCH_throughput.json)
      --baseline P    compare speedups against a previous report; fail on
                      a >20% regression (skipped when P does not exist)
  -h, --help          this text
";

struct Options {
    smoke: bool,
    out: String,
    baseline: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        out: "BENCH_throughput.json".to_string(),
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => opts.out = args.next().ok_or("missing value for --out")?,
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("missing value for --baseline")?);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// One measured run: deterministic result fingerprint + work counters.
///
/// `wall_secs` covers only the simulation loop itself — assembly, core
/// construction, and firmware boot happen before the clock starts, so the
/// reported speedup is the interpreter's, not the setup path's.
struct RunOutcome {
    fingerprint: String,
    sim_cycles: u64,
    instret: u64,
    wall_secs: f64,
}

fn kernel(name: &str) -> &'static Kernel {
    Kernel::by_name(name).unwrap_or_else(|| panic!("kernel {name}?"))
}

/// A bare CVA6 core (no CFI transport): measures the interpreter itself.
fn run_bare_core(name: &str, fast: bool, budget: u64) -> RunOutcome {
    let prog = kernel(name).program().expect("assembles");
    let mut core =
        cva6_model::Cva6Core::new(&prog, KERNEL_MEM, cva6_model::TimingConfig::default());
    core.set_predecode(fast);
    let t = Instant::now();
    let halt = core.run_silent(budget);
    let wall_secs = t.elapsed().as_secs_f64();
    let stats = core.stats();
    RunOutcome {
        fingerprint: format!("{halt:?}|{stats:?}|a0={:#x}", core.reg(riscv_isa::Reg::A0)),
        sim_cycles: core.cycle(),
        instret: stats.instret,
        wall_secs,
    }
}

/// Every assembly kernel on the bare core, back to back — the native-suite
/// aggregate the acceptance criteria track.
fn run_native_suite(fast: bool, budget: u64) -> RunOutcome {
    let mut fingerprint = String::new();
    let mut sim_cycles = 0;
    let mut instret = 0;
    let mut wall_secs = 0.0;
    for k in all_kernels() {
        let out = run_bare_core(k.name, fast, budget);
        fingerprint.push_str(k.name);
        fingerprint.push(':');
        fingerprint.push_str(&out.fingerprint);
        fingerprint.push('\n');
        sim_cycles += out.sim_cycles;
        instret += out.instret;
        wall_secs += out.wall_secs;
    }
    RunOutcome {
        fingerprint,
        sim_cycles,
        instret,
        wall_secs,
    }
}

/// The full SoC (host + CFI transport + RoT firmware): measures quantum
/// batching on top of predecode.
fn run_soc(name: &str, fast: bool, budget: u64) -> RunOutcome {
    let prog = kernel(name).program().expect("assembles");
    let config = SocConfig {
        mem_size: KERNEL_MEM,
        fast_path: fast,
        ..SocConfig::default()
    };
    let mut soc = SystemOnChip::new(&prog, config);
    let t = Instant::now();
    let r = soc.run(budget);
    let wall_secs = t.elapsed().as_secs_f64();
    RunOutcome {
        fingerprint: format!(
            "{:?}|{}|{:?}|{:?}|logs={}|viol={}|hw={}|qf={}|dcf={}",
            r.halt,
            r.cycles,
            r.core,
            r.filter,
            r.logs_checked,
            r.violations.len(),
            r.queue_high_water,
            r.stalls_queue_full,
            r.stalls_dual_cf
        ),
        sim_cycles: r.cycles,
        instret: r.core.instret,
        wall_secs,
    }
}

/// Two hosts sharing one RoT: measures the multi-core scheduler fast path.
fn run_multicore(fast: bool, budget: u64) -> RunOutcome {
    let a = kernel("fib").program().expect("assembles");
    let b = kernel("towers").program().expect("assembles");
    let mut soc = DualHostSoc::new([&a, &b], KERNEL_MEM, 8);
    soc.set_fast_path(fast);
    let t = Instant::now();
    let r = soc.run(budget);
    let wall_secs = t.elapsed().as_secs_f64();
    RunOutcome {
        fingerprint: format!("{r:?}"),
        sim_cycles: r.cores[0].cycles + r.cores[1].cycles,
        instret: r.cores.iter().map(|c| c.instret).sum(),
        wall_secs,
    }
}

struct Row {
    scenario: &'static str,
    sim_cycles: u64,
    instret: u64,
    wall_ms_fast: f64,
    wall_ms_slow: f64,
    speedup: f64,
    fingerprint_match: bool,
}

fn measure(scenario: &'static str, min_wall: f64, run: impl Fn(bool) -> RunOutcome) -> Row {
    // Short kernels finish in microseconds, far below timer noise on a
    // shared host — repeat each setting until `min_wall` seconds of actual
    // simulation accumulate and report the *fastest* lap. The minimum is
    // the uncontended cost: a preemption spike inflates the laps it hits,
    // which a mean dutifully averages in, while the min shrugs it off.
    // Every repetition must reproduce the first run's fingerprint exactly.
    let timed = |setting: bool| {
        let first = run(setting);
        let mut wall = first.wall_secs;
        let mut best = first.wall_secs;
        let mut laps = 1u32;
        while wall < min_wall && laps < 1000 {
            let r = run(setting);
            assert_eq!(
                r.fingerprint, first.fingerprint,
                "`{scenario}` is nondeterministic across repetitions"
            );
            wall += r.wall_secs;
            best = best.min(r.wall_secs);
            laps += 1;
        }
        (first, best)
    };
    let (slow, wall_slow) = timed(false);
    let (fast, wall_fast) = timed(true);
    let matches = slow.fingerprint == fast.fingerprint
        && slow.sim_cycles == fast.sim_cycles
        && slow.instret == fast.instret;
    if !matches {
        eprintln!("throughput: FINGERPRINT MISMATCH in `{scenario}`");
        eprintln!(
            "  fast-off: {}",
            slow.fingerprint.replace('\n', "\n            ")
        );
        eprintln!(
            "  fast-on:  {}",
            fast.fingerprint.replace('\n', "\n            ")
        );
    }
    let row = Row {
        scenario,
        sim_cycles: fast.sim_cycles,
        instret: fast.instret,
        wall_ms_fast: wall_fast * 1e3,
        wall_ms_slow: wall_slow * 1e3,
        speedup: if wall_fast > 0.0 {
            wall_slow / wall_fast
        } else {
            0.0
        },
        fingerprint_match: matches,
    };
    println!(
        "{:<16} {:>12} sim-cycles  {:>10.1} ms off  {:>10.1} ms on  {:>6.2}x  {:>12.0} cyc/s  {}",
        row.scenario,
        row.sim_cycles,
        row.wall_ms_slow,
        row.wall_ms_fast,
        row.speedup,
        row.sim_cycles as f64 / (wall_fast.max(1e-9)),
        if matches { "ok" } else { "MISMATCH" }
    );
    row
}

/// Report schema (v2):
///   - `sim_cycles`, `instret`: work done by the fast run (multicore sums
///     both cores; `instret` is never zero on a scenario that retired
///     instructions).
///   - `wall_ms_slow` / `wall_ms_fast`: fastest lap per setting (min over
///     repetitions — robust to preemption spikes on a shared host);
///     `speedup` = slow/fast: the only machine-portable number (same
///     binary, same host, back to back).
///   - `regressed`: the fast path was a net slowdown beyond measurement
///     noise — `speedup < 0.8`, the same 20 % tolerance the `--baseline`
///     gate applies, so a 0.97x wall-clock wobble on a tiny kernel does
///     not read as a regression.
///   - `fingerprint_match`: fast and strict runs produced byte-identical
///     result fingerprints.
fn report_json(mode: &str, rows: &[Row]) -> Json {
    Json::obj(vec![
        ("schema", Json::Num(2.0)),
        ("mode", Json::Str(mode.to_string())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("scenario", Json::Str(r.scenario.to_string())),
                            ("sim_cycles", Json::Num(r.sim_cycles as f64)),
                            ("instret", Json::Num(r.instret as f64)),
                            ("wall_ms_slow", Json::Num(r.wall_ms_slow)),
                            ("wall_ms_fast", Json::Num(r.wall_ms_fast)),
                            (
                                "cycles_per_sec",
                                Json::Num(r.sim_cycles as f64 / (r.wall_ms_fast / 1e3).max(1e-9)),
                            ),
                            (
                                "instret_per_sec",
                                Json::Num(r.instret as f64 / (r.wall_ms_fast / 1e3).max(1e-9)),
                            ),
                            ("speedup", Json::Num(r.speedup)),
                            ("regressed", Json::Bool(r.speedup < REGRESSED_TOLERANCE)),
                            ("fingerprint_match", Json::Bool(r.fingerprint_match)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Wall-clock tolerance shared by the per-row `regressed` flag and the
/// `--baseline` gate: anything within 20 % is measurement noise, anything
/// beyond it is a real slowdown.
const REGRESSED_TOLERANCE: f64 = 0.8;

/// Compares per-scenario speedups against a previous report. Speedup (wall
/// off / wall on, same machine, same binary) is the only machine-portable
/// number in the report — absolute cycles/sec are not comparable across
/// hosts. Returns the failures: scenarios that regressed by more than
/// 20 %, or a baseline that gated nothing. Scenarios absent from the
/// baseline are warned about (renames and new scenarios must not silently
/// shrink the gate), and a baseline matching *zero* rows is itself a
/// failure — that is a stale or corrupt file, not a clean pass.
fn regressions(baseline: &Json, rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    let Some(base_rows) = baseline.get("rows").and_then(Json::as_arr) else {
        out.push("baseline has no `rows` array — regenerate it".to_string());
        return out;
    };
    let mut matched = 0usize;
    let mut missing = 0usize;
    for row in rows {
        let base = base_rows
            .iter()
            .find(|b| b.get("scenario").and_then(Json::as_str) == Some(row.scenario));
        let Some(base_speedup) = base.and_then(|b| b.get("speedup")).and_then(Json::as_num) else {
            missing += 1;
            eprintln!(
                "throughput: WARNING `{}` missing from baseline — not gated",
                row.scenario
            );
            continue;
        };
        matched += 1;
        if row.speedup < REGRESSED_TOLERANCE * base_speedup {
            out.push(format!(
                "{}: speedup {:.2}x < 80% of baseline {:.2}x",
                row.scenario, row.speedup, base_speedup
            ));
        }
    }
    if missing > 0 {
        eprintln!(
            "throughput: {missing} of {} scenario(s) missing from baseline",
            rows.len()
        );
    }
    if matched == 0 {
        out.push(
            "baseline matched zero scenarios — the gate checked nothing; regenerate the baseline"
                .to_string(),
        );
    }
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("throughput: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Read the baseline up front: CI passes the same path for --baseline
    // and --out, so it must be consumed before the report overwrites it.
    let baseline = opts.baseline.as_deref().and_then(|path| {
        let text = std::fs::read_to_string(path).ok()?;
        match Json::parse(&text) {
            Ok(json) => Some(json),
            Err(e) => {
                eprintln!("throughput: ignoring unparseable baseline {path}: {e}");
                None
            }
        }
    });

    let budget: u64 = if opts.smoke { 3_000_000 } else { 20_000_000 };
    let mode = if opts.smoke { "smoke" } else { "full" };
    println!("simulator throughput ({mode}, budget {budget} cycles/kernel)");
    let min_wall = if opts.smoke { 0.25 } else { 1.5 };
    let rows = vec![
        measure("fib-recursion", min_wall, |fast| {
            run_bare_core("fib", fast, budget)
        }),
        measure("call-dense", min_wall, |fast| {
            run_soc("dhry-calls", fast, budget)
        }),
        measure("branch-chain", min_wall, |fast| {
            run_soc("crc32", fast, budget)
        }),
        measure("multicore", min_wall, |fast| run_multicore(fast, budget)),
        measure("native-suite", min_wall, |fast| {
            run_native_suite(fast, budget)
        }),
    ];

    // A speedup below the noise tolerance means the fast path *slowed that
    // scenario down*. It is not a failure (tiny kernels can lose more to
    // cache setup than batching saves), but it must never pass silently:
    // the row carries an explicit `regressed` flag and the run prints a
    // warning. Sub-1.0 wobbles within the tolerance are timer noise, not
    // regressions.
    for row in rows.iter().filter(|r| r.speedup < REGRESSED_TOLERANCE) {
        println!(
            "throughput: WARNING `{}` fast path is a net slowdown ({:.2}x < {REGRESSED_TOLERANCE:.2}x)",
            row.scenario, row.speedup
        );
    }

    let json = report_json(mode, &rows);
    if let Err(e) = std::fs::write(&opts.out, json.encode() + "\n") {
        eprintln!("throughput: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);

    if !rows.iter().all(|r| r.fingerprint_match) {
        eprintln!("throughput: fast path diverged from strict stepping");
        return ExitCode::FAILURE;
    }
    match baseline {
        Some(base) => {
            let regressed = regressions(&base, &rows);
            if !regressed.is_empty() {
                for r in &regressed {
                    eprintln!("throughput: REGRESSION {r}");
                }
                return ExitCode::FAILURE;
            }
            println!("speedups within 20% of baseline");
        }
        None => println!("no baseline report — regression gate skipped"),
    }
    ExitCode::SUCCESS
}
