//! Cycle-level instrumented run: Perfetto trace export, stall attribution,
//! and the exact firmware hot-spot profile for one kernel.
//!
//! ```text
//! cargo run --release -p titancfi-bench --bin trace -- \
//!     --kernel fib --firmware polling --trace out.json --collapsed out.folded
//! ```
//!
//! The `--trace` file is Chrome/Perfetto `trace_event` JSON — open it at
//! `ui.perfetto.dev`. The `--collapsed` file is flamegraph-collapsed stack
//! lines (`flamegraph.pl out.folded > out.svg`).

use std::process::ExitCode;
use titancfi::firmware::FirmwareKind;
use titancfi_obs::Timeline;
use titancfi_soc::{run_baseline, SocConfig, SystemOnChip};
use titancfi_workloads::kernels::{all_kernels, Kernel, KERNEL_MEM};

const USAGE: &str = "\
usage: trace [options]

  -k, --kernel NAME   kernel to run (default: fib); --list shows all
      --firmware V    firmware variant: irq | polling | optimized (default: polling)
      --depth N       CFI queue depth (default: 8)
      --max-cycles N  cycle budget (default: 10000000)
      --trace PATH    write Perfetto trace_event JSON to PATH ('-' for stdout)
      --collapsed P   write flamegraph-collapsed stacks to P
      --metrics P     write the metric registry as JSON to P
      --top N         hot-spot rows to print (default: 10)
      --list          list available kernels and exit
  -h, --help          this text
";

struct Options {
    kernel: String,
    firmware: FirmwareKind,
    depth: usize,
    max_cycles: u64,
    trace: Option<String>,
    collapsed: Option<String>,
    metrics: Option<String>,
    top: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        kernel: "fib".to_string(),
        firmware: FirmwareKind::Polling,
        depth: 8,
        max_cycles: 10_000_000,
        trace: None,
        collapsed: None,
        metrics: None,
        top: 10,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-k" | "--kernel" => {
                opts.kernel = args.next().ok_or("missing value for --kernel")?;
            }
            "--firmware" => {
                let v = args.next().ok_or("missing value for --firmware")?;
                opts.firmware = match v.as_str() {
                    "irq" => FirmwareKind::Irq,
                    "polling" => FirmwareKind::Polling,
                    "optimized" => FirmwareKind::Optimized,
                    other => return Err(format!("unknown firmware `{other}`")),
                };
            }
            "--depth" => {
                let v = args.next().ok_or("missing value for --depth")?;
                opts.depth = v.parse().map_err(|_| format!("bad depth `{v}`"))?;
            }
            "--max-cycles" => {
                let v = args.next().ok_or("missing value for --max-cycles")?;
                opts.max_cycles = v.parse().map_err(|_| format!("bad cycle count `{v}`"))?;
            }
            "--trace" => opts.trace = Some(args.next().ok_or("missing value for --trace")?),
            "--collapsed" => {
                opts.collapsed = Some(args.next().ok_or("missing value for --collapsed")?);
            }
            "--metrics" => opts.metrics = Some(args.next().ok_or("missing value for --metrics")?),
            "--top" => {
                let v = args.next().ok_or("missing value for --top")?;
                opts.top = v.parse().map_err(|_| format!("bad row count `{v}`"))?;
            }
            "--list" => {
                for k in all_kernels() {
                    println!("{}", k.name);
                }
                std::process::exit(0);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn write_output(path: &str, content: &str) -> Result<(), String> {
    if path == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("trace: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let Some(kernel) = Kernel::by_name(&opts.kernel) else {
        eprintln!("trace: unknown kernel `{}` (try --list)", opts.kernel);
        return ExitCode::from(2);
    };
    let program = match kernel.program() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("trace: kernel `{}` failed to assemble: {e}", opts.kernel);
            return ExitCode::FAILURE;
        }
    };

    let config = SocConfig {
        queue_depth: opts.depth,
        firmware: opts.firmware,
        mem_size: KERNEL_MEM,
        ..SocConfig::default()
    };
    let (_, baseline_cycles) = run_baseline(&program, &config);
    let mut soc = SystemOnChip::new(&program, config);
    soc.attach_recorder();
    let report = soc.run(opts.max_cycles);
    let recorder = soc.take_recorder().expect("recorder was attached");

    println!(
        "kernel {} · firmware {:?} · queue depth {}",
        opts.kernel, opts.firmware, opts.depth
    );
    println!(
        "cycles {} (baseline {baseline_cycles}, {:+.2} %) · logs checked {} · halt {:?}",
        report.cycles,
        report.slowdown_percent(baseline_cycles),
        report.logs_checked,
        report.halt
    );
    println!();

    // Stall attribution: the probe counters must re-derive the report.
    let m = &recorder.metrics;
    let attributed = m.counter("stall.dual_cf") + m.counter("stall.queue_full");
    println!("stall attribution:");
    println!(
        "  dual-CF commits        {:>10}",
        m.counter("stall.dual_cf")
    );
    println!(
        "  queue full             {:>10}  (AXI beats in flight {}, RoT check {})",
        m.counter("stall.queue_full"),
        m.counter("stall.axi_busy"),
        m.counter("stall.fw_wait"),
    );
    println!(
        "  total                  {:>10}  (report: {})",
        attributed,
        report.stalls_queue_full + report.stalls_dual_cf
    );
    println!();
    print!("{}", m.render());
    println!();
    if let Some(profiler) = recorder.profiler.as_ref() {
        print!("{}", profiler.report(opts.top));
    }

    if let Some(path) = opts.trace.as_deref() {
        let json = recorder.timeline.to_perfetto_json().encode();
        if let Err(e) = Timeline::validate(&json) {
            eprintln!("trace: exported trace failed validation: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(msg) = write_output(path, &json) {
            eprintln!("trace: {msg}");
            return ExitCode::FAILURE;
        }
        if recorder.timeline.dropped() > 0 {
            eprintln!(
                "trace: event cap hit, {} events dropped",
                recorder.timeline.dropped()
            );
        }
        eprintln!(
            "trace: wrote {} events to {path} (open at ui.perfetto.dev)",
            recorder.timeline.len()
        );
    }
    if let Some(path) = opts.collapsed.as_deref() {
        let folded = recorder
            .profiler
            .as_ref()
            .map(titancfi_obs::FirmwareProfiler::collapsed)
            .unwrap_or_default();
        if let Err(msg) = write_output(path, &folded) {
            eprintln!("trace: {msg}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = opts.metrics.as_deref() {
        if let Err(msg) = write_output(path, &m.to_json().encode()) {
            eprintln!("trace: {msg}");
            return ExitCode::FAILURE;
        }
    }

    if attributed != report.stalls_queue_full + report.stalls_dual_cf {
        eprintln!(
            "trace: stall attribution mismatch: counters {attributed} vs report {}",
            report.stalls_queue_full + report.stalls_dual_cf
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
