//! Detection-latency attribution benchmark: where do the cycles between a
//! control-flow commit and the RoT's verdict actually go?
//!
//! ```text
//! cargo run --release -p titancfi-bench --bin latency -- \
//!     --smoke --out BENCH_latency.json
//! ```
//!
//! Two sweeps feed `BENCH_latency.json`:
//!
//! * **Benign attribution** — firmware variant (polling vs IRQ) × queue
//!   depth on the call-dense kernel, reporting p50/p95/p99/max for every
//!   lifecycle stage (queue wait, AXI beats, firmware check, verdict
//!   read-back) plus end-to-end. Every cell is run three times: twice in
//!   strict stepping (rerun determinism) and once with the predecode +
//!   quantum-batching fast path requested (the latency probe forces strict
//!   stepping, so the metrics must come out byte-identical — that identity
//!   is asserted, not assumed).
//! * **Detection latency** — corruption classes (stack-smash hijack loop,
//!   fuzz-generated return hijacks, a wedged doorbell transport under a
//!   fail-closed watchdog), reporting the cycles from the corrupting
//!   event's commit-log acceptance to the violation flag.
//!
//! Exit is nonzero when any run breaks the per-log conservation law
//! (stage spans must telescope exactly to end-to-end), when stepping modes
//! disagree, or when a corruption run detects nothing.

use std::process::ExitCode;
use titancfi::firmware::FirmwareKind;
use titancfi::{FailPolicy, ResilienceConfig};
use titancfi_faults::{FaultClass, FaultConfig};
use titancfi_fuzz::{oracle::assemble_fuzz, FuzzProgram};
use titancfi_harness::Json;
use titancfi_obs::LatencySpans;
use titancfi_soc::{SocConfig, SystemOnChip};
use titancfi_workloads::kernels::{Kernel, KERNEL_MEM};

const USAGE: &str = "\
usage: latency [options]

      --smoke         reduced cycle budgets (CI smoke run)
      --out PATH      write the JSON report to PATH (default: BENCH_latency.json)
  -h, --help          this text
";

struct Options {
    smoke: bool,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        out: "BENCH_latency.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => opts.out = args.next().ok_or("missing value for --out")?,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Runs `program` under `config` with the latency collector attached and
/// returns the collected spans.
fn run_with_latency(program: &riscv_asm::Program, config: SocConfig, budget: u64) -> LatencySpans {
    let mut soc = SystemOnChip::new(program, config);
    soc.attach_latency();
    let _ = soc.run(budget);
    soc.take_latency().expect("collector attached above").spans
}

/// One benign sweep cell: checks determinism across reruns and stepping
/// modes, enforces conservation, and returns (spans, cross_mode_match).
fn benign_cell(
    program: &riscv_asm::Program,
    firmware: FirmwareKind,
    queue_depth: usize,
    budget: u64,
) -> (LatencySpans, bool, bool) {
    let config = |fast: bool| SocConfig {
        mem_size: KERNEL_MEM,
        firmware,
        queue_depth,
        fast_path: fast,
        ..SocConfig::default()
    };
    let strict = run_with_latency(program, config(false), budget);
    let rerun = run_with_latency(program, config(false), budget);
    let fast = run_with_latency(program, config(true), budget);
    let strict_json = strict.to_json().encode();
    let identical =
        strict_json == rerun.to_json().encode() && strict_json == fast.to_json().encode();
    let conserved = strict.conservation_ok();
    (strict, identical, conserved)
}

/// The stack-smash loop: every iteration saves `ra`, overwrites the slot
/// with the gadget address, and `ret`s into the hijack; the gadget jumps
/// straight back so the next iteration smashes again — `iters` distinct
/// detections per run.
fn loop_smash_source(iters: u32) -> String {
    format!(
        "
        _start:
            li   s0, {iters}
        loop:
            call vulnerable
        resume:
            addi s0, s0, -1
            bnez s0, loop
            ebreak
        vulnerable:
            addi sp, sp, -16
            sd   ra, 8(sp)
            la   t0, gadget
            sd   t0, 8(sp)
            ld   ra, 8(sp)
            addi sp, sp, 16
            ret
        gadget:
            j    resume
        "
    )
}

struct DetectionRow {
    scenario: &'static str,
    spans: LatencySpans,
    conserved: bool,
}

fn stage_json(spans: &LatencySpans) -> Json {
    Json::Obj(
        spans
            .stages()
            .iter()
            .map(|(name, hist)| ((*name).to_string(), LatencySpans::summary_json(hist)))
            .collect(),
    )
}

fn benign_row_json(
    firmware: FirmwareKind,
    depth: usize,
    spans: &LatencySpans,
    cross_mode: bool,
) -> Json {
    Json::obj(vec![
        ("firmware", Json::Str(firmware.name().to_string())),
        ("queue_depth", Json::Num(depth as f64)),
        ("logs_checked", Json::Num(spans.checked_ok as f64)),
        ("violations", Json::Num(spans.violations as f64)),
        ("stages", stage_json(spans)),
        ("detection", Json::Null),
        ("conservation_ok", Json::Bool(spans.conservation_ok())),
        ("cross_mode_match", Json::Bool(cross_mode)),
    ])
}

fn detection_row_json(row: &DetectionRow) -> Json {
    Json::obj(vec![
        ("scenario", Json::Str(row.scenario.to_string())),
        ("detections", Json::Num(row.spans.detection.count as f64)),
        ("violations", Json::Num(row.spans.violations as f64)),
        ("forced", Json::Num(row.spans.forced as f64)),
        ("stages", stage_json(&row.spans)),
        (
            "detection",
            LatencySpans::summary_json(&row.spans.detection),
        ),
        ("conservation_ok", Json::Bool(row.conserved)),
    ])
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("latency: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mode = if opts.smoke { "smoke" } else { "full" };
    let budget: u64 = if opts.smoke { 400_000 } else { 4_000_000 };
    println!("latency attribution ({mode}, budget {budget} cycles/cell)");
    let mut failed = false;

    // --- Benign attribution sweep: firmware × queue depth. ---
    let kernel = Kernel::by_name("dhry-calls")
        .expect("dhry-calls kernel")
        .program()
        .expect("assembles");
    let mut benign_rows = Vec::new();
    for firmware in [FirmwareKind::Polling, FirmwareKind::Irq] {
        for depth in [1usize, 8] {
            let (spans, cross_mode, conserved) = benign_cell(&kernel, firmware, depth, budget);
            if !conserved {
                eprintln!(
                    "latency: CONSERVATION FAILURE {}/depth{depth}: \
                     {} logs broke the stage-sum law, {} orphan events",
                    firmware.name(),
                    spans.conservation_failures,
                    spans.orphans
                );
                failed = true;
            }
            if !cross_mode {
                eprintln!(
                    "latency: STEPPING-MODE MISMATCH {}/depth{depth}: \
                     latency metrics must be byte-identical across strict/predecode/fast-forward",
                    firmware.name()
                );
                failed = true;
            }
            if spans.checked_ok == 0 {
                eprintln!(
                    "latency: {}/depth{depth} checked zero logs",
                    firmware.name()
                );
                failed = true;
            }
            println!(
                "{:>8} depth {depth}  logs {:>6}  e2e p50 {:>5} p99 {:>6} max {:>6}  {}",
                firmware.name(),
                spans.checked_ok,
                spans.end_to_end.percentile(0.50),
                spans.end_to_end.percentile(0.99),
                spans.end_to_end.max,
                if conserved && cross_mode {
                    "ok"
                } else {
                    "FAIL"
                }
            );
            benign_rows.push(benign_row_json(firmware, depth, &spans, cross_mode));
        }
    }

    // --- Detection-latency sweep: corruption classes. ---
    let mut detection_rows = Vec::new();

    // Class 1: the classic stack-smash, looped for a population.
    let smash_iters = if opts.smoke { 8 } else { 64 };
    let smash = riscv_asm::assemble(
        &loop_smash_source(smash_iters),
        riscv_isa::Xlen::Rv64,
        0x8000_0000,
    )
    .expect("loop-smash assembles");
    let spans = run_with_latency(
        &smash,
        SocConfig {
            mem_size: KERNEL_MEM,
            queue_depth: 8,
            ..SocConfig::default()
        },
        budget,
    );
    detection_rows.push(DetectionRow {
        scenario: "loop-smash",
        conserved: spans.conservation_ok(),
        spans,
    });

    // Class 2: fuzz-generated return hijacks, several seeds merged.
    let seeds: &[u64] = if opts.smoke { &[1] } else { &[1, 2, 3, 4] };
    let mut merged: Option<LatencySpans> = None;
    let mut fuzz_conserved = true;
    for &seed in seeds {
        let fuzz = FuzzProgram::generate(seed).with_corruption();
        let program = assemble_fuzz(&fuzz.emit(), fuzz.compressed).expect("fuzz assembles");
        let spans = run_with_latency(
            &program,
            SocConfig {
                mem_size: KERNEL_MEM,
                queue_depth: 8,
                ..SocConfig::default()
            },
            budget,
        );
        fuzz_conserved &= spans.conservation_ok();
        match merged.as_mut() {
            Some(m) => m.merge(&spans),
            None => merged = Some(spans),
        }
    }
    detection_rows.push(DetectionRow {
        scenario: "return-hijack-fuzz",
        conserved: fuzz_conserved,
        spans: merged.expect("at least one seed"),
    });

    // Class 3: a wedged transport — every doorbell ring dropped; the
    // fail-closed watchdog turns each undeliverable log into a forced
    // violation, whose detection window is escalation-minus-accept.
    let spans = run_with_latency(
        &kernel,
        SocConfig {
            mem_size: KERNEL_MEM,
            queue_depth: 8,
            faults: Some(FaultConfig::only(FaultClass::DoorbellDrop, 1, 0xD00B)),
            resilience: ResilienceConfig {
                watchdog_timeout: 200,
                max_attempts: 2,
                backoff: 16,
                policy: FailPolicy::FailClosed,
            },
            ..SocConfig::default()
        },
        budget,
    );
    detection_rows.push(DetectionRow {
        scenario: "transport-wedge",
        conserved: spans.conservation_ok(),
        spans,
    });

    for row in &detection_rows {
        if row.spans.detection.count == 0 {
            eprintln!(
                "latency: `{}` produced no detections — corruption did not reach the RoT",
                row.scenario
            );
            failed = true;
        }
        if !row.conserved {
            eprintln!("latency: CONSERVATION FAILURE in `{}`", row.scenario);
            failed = true;
        }
        println!(
            "{:<20} detections {:>5}  window p50 {:>6} p99 {:>7} max {:>7}  {}",
            row.scenario,
            row.spans.detection.count,
            row.spans.detection.percentile(0.50),
            row.spans.detection.percentile(0.99),
            row.spans.detection.max,
            if row.conserved && row.spans.detection.count > 0 {
                "ok"
            } else {
                "FAIL"
            }
        );
    }

    let json = Json::obj(vec![
        ("schema", Json::Num(1.0)),
        ("mode", Json::Str(mode.to_string())),
        ("budget_cycles", Json::Num(budget as f64)),
        ("benign", Json::Arr(benign_rows)),
        (
            "detection",
            Json::Arr(detection_rows.iter().map(detection_row_json).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(&opts.out, json.encode() + "\n") {
        eprintln!("latency: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);

    if failed {
        eprintln!("latency: attribution gate FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
