//! Regenerates the paper's Table IV (FPGA resource utilization).
fn main() {
    print!("{}", titancfi_bench::table4());
}
