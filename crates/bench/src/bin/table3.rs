//! Regenerates the paper's Table III (full-suite slowdown, depth 8).
fn main() {
    print!("{}", titancfi_bench::table3());
}
