//! Design-space sweep: queue depth × check latency on the heaviest
//! published benchmarks — the exploration behind the paper's choice of an
//! 8-entry queue and its two firmware optimizations.
//!
//! Run with: `cargo run -p titancfi-bench --bin sweep`
//! (or in parallel, as part of `--bin campaign`.)

fn main() {
    print!("{}", titancfi_bench::sweep_text());
}
