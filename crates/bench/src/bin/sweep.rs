//! Design-space sweep: queue depth × check latency on the heaviest
//! published benchmarks — the exploration behind the paper's choice of an
//! 8-entry queue and its two firmware optimizations.
//!
//! Run with: `cargo run -p titancfi-bench --bin sweep`

use titancfi_trace::simulate;
use titancfi_workloads::published::{table3_row, LATENCY_IRQ, LATENCY_OPT, LATENCY_POLL};
use titancfi_workloads::synthetic::trace_for;

const BENCHMARKS: [&str; 5] = ["mm", "dhrystone", "cubic", "sglib-combined", "huffbench"];
const DEPTHS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    println!("Queue-depth x latency design space (slowdown %, calibrated traces)\n");
    for name in BENCHMARKS {
        let row = table3_row(name).expect("published row");
        let trace = trace_for(row, 0x5eed);
        println!(
            "{name}  ({} cycles, {} control-flow events)",
            row.cycles, row.cf
        );
        println!(
            "  {:>8} {:>10} {:>10} {:>10}",
            "depth", "IRQ(267)", "Poll(112)", "Opt(73)"
        );
        for depth in DEPTHS {
            let irq = simulate(&trace, LATENCY_IRQ, depth).slowdown_percent();
            let poll = simulate(&trace, LATENCY_POLL, depth).slowdown_percent();
            let opt = simulate(&trace, LATENCY_OPT, depth).slowdown_percent();
            println!("  {depth:>8} {irq:>10.1} {poll:>10.1} {opt:>10.1}");
        }
        println!();
    }
    println!("Reading: queue depth barely helps saturated benchmarks (mm) — only a");
    println!("faster check does — while bursty ones (huffbench) are fully absorbed at");
    println!("depth 8. That is the paper's implicit argument for pairing a small queue");
    println!("with firmware-latency optimization rather than growing the queue.");
}
