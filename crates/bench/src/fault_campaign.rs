//! The fault-injection campaign: seeded fault scenarios through the
//! `titancfi-harness` pool, aggregated into a per-class detection /
//! recovery matrix.
//!
//! Each scenario is one full-SoC co-simulation with a single fault class
//! armed at a fixed one-in-N rate and a fixed PRNG seed, under either the
//! fail-closed or fail-open escalation policy. The job's metrics carry the
//! [`titancfi_faults::FaultReport`] ledger counters plus the watchdog /
//! retry / drop totals; [`FaultPlan::assemble`] folds them into the matrix
//! and flags any scenario whose faults went unresolved or whose run hit the
//! cycle budget (a hang) — the `faults` binary turns either into a nonzero
//! exit, which is what the CI smoke step keys on.
//!
//! Scenarios are deterministic per (kernel, class, rate, seed, policy), so
//! the content-addressed result cache applies exactly as for the table
//! campaign.

use std::sync::Arc;

use cva6_model::Halt;
use titancfi::{FailPolicy, ResilienceConfig};
use titancfi_faults::{FaultClass, FaultConfig};
use titancfi_harness::{CampaignOutcome, Job, JobDescriptor, JobOutput};
use titancfi_soc::{SocConfig, SystemOnChip};
use titancfi_workloads::{Kernel, KERNEL_MEM};

use crate::campaign::SCHEMA_VERSION;
use std::fmt::Write as _;

/// Cycle budget for one fault scenario. Every scenario must terminate far
/// inside this — reaching it is reported as a hang and fails the campaign.
pub const FAULT_CYCLE_CAP: u64 = 200_000_000;

/// Watchdog / retry parameters used by every scenario: tight enough that
/// even a permanently wedged RoT escalates within a few thousand cycles.
#[must_use]
pub fn campaign_resilience(policy: FailPolicy) -> ResilienceConfig {
    ResilienceConfig {
        watchdog_timeout: 2_000,
        max_attempts: 3,
        backoff: 128,
        policy,
    }
}

/// Default one-in-N injection rate per fault class (transient transport
/// faults are frequent; firmware hangs/traps are single-shot since the
/// first one wedges the RoT for good).
#[must_use]
pub fn default_rate(class: FaultClass) -> u32 {
    match class {
        FaultClass::AxiBeatError | FaultClass::BitFlip => 5,
        FaultClass::AxiExtraLatency | FaultClass::DoorbellDrop | FaultClass::DoorbellDelay => 3,
        FaultClass::FirmwareGlitch => 2,
        FaultClass::FirmwareHang | FaultClass::FirmwareTrap => 1,
    }
}

/// One seeded fault scenario: kernel × class × rate × seed × policy.
pub struct FaultScenarioJob {
    /// Kernel name (resolved via [`Kernel::by_name`]).
    pub kernel: &'static str,
    /// The single fault class armed for this run.
    pub class: FaultClass,
    /// One-in-N injection rate at the class's fault sites.
    pub one_in: u32,
    /// PRNG seed for the injection schedule.
    pub seed: u64,
    /// Escalation policy once retries are exhausted.
    pub policy: FailPolicy,
}

fn policy_name(policy: FailPolicy) -> &'static str {
    match policy {
        FailPolicy::FailClosed => "closed",
        FailPolicy::FailOpen => "open",
    }
}

impl Job for FaultScenarioJob {
    fn label(&self) -> String {
        format!(
            "fault:{}:{}:{}:{}",
            self.kernel,
            self.class.name(),
            self.seed,
            policy_name(self.policy)
        )
    }

    fn descriptor(&self) -> JobDescriptor {
        JobDescriptor::new(
            "fault_scenario",
            &[
                ("schema", SCHEMA_VERSION.to_string()),
                ("kernel", self.kernel.to_string()),
                ("class", self.class.name().to_string()),
                ("one_in", self.one_in.to_string()),
                ("seed", format!("{:#x}", self.seed)),
                ("policy", policy_name(self.policy).to_string()),
                ("cap", FAULT_CYCLE_CAP.to_string()),
            ],
        )
    }

    fn run(&self) -> Result<JobOutput, String> {
        let kernel = Kernel::by_name(self.kernel)
            .ok_or_else(|| format!("unknown kernel {}", self.kernel))?;
        let prog = kernel
            .program()
            .map_err(|e| format!("{}: {e}", self.kernel))?;
        let mut soc = SystemOnChip::new(
            &prog,
            SocConfig {
                mem_size: KERNEL_MEM,
                resilience: campaign_resilience(self.policy),
                faults: Some(FaultConfig::only(self.class, self.one_in, self.seed)),
                ..SocConfig::default()
            },
        );
        let report = soc.run(FAULT_CYCLE_CAP);
        let ledger = report
            .faults
            .ok_or_else(|| "run produced no fault ledger".to_string())?;
        let stats = ledger.class(self.class);
        let hung = report.halt == Halt::Budget;
        let artifact = format!(
            "{:<10} {:<18} {:>4} {:>6} {:<7} {:>8} {:>8} {:>9} {:>9} {:>10}  {}\n",
            self.kernel,
            self.class.name(),
            self.one_in,
            self.seed,
            policy_name(self.policy),
            stats.injected,
            stats.detected,
            stats.recovered,
            stats.escalated,
            stats.unresolved,
            if hung {
                "HUNG".to_string()
            } else {
                format!("{:?}@{}", report.halt, report.cycles)
            },
        );
        Ok(JobOutput {
            artifact,
            metrics: vec![
                ("injected".to_string(), stats.injected as f64),
                ("detected".to_string(), stats.detected as f64),
                ("recovered".to_string(), stats.recovered as f64),
                ("escalated".to_string(), stats.escalated as f64),
                ("unresolved".to_string(), stats.unresolved as f64),
                ("hung".to_string(), u64::from(hung) as f64),
                ("watchdogs".to_string(), report.watchdog_timeouts as f64),
                ("retries".to_string(), report.writer_retries as f64),
                ("dropped".to_string(), report.logs_dropped as f64),
                ("forced".to_string(), report.forced_violations as f64),
                ("sim_cycles".to_string(), report.cycles as f64),
            ],
        })
    }
}

/// Aggregated matrix row for one fault class.
#[derive(Debug, Default, Clone, Copy)]
pub struct MatrixRow {
    /// Scenarios run for this class.
    pub runs: u64,
    /// Ledger totals across those scenarios.
    pub injected: u64,
    /// Faults noticed by a detector (watchdog, integrity check, trap path).
    pub detected: u64,
    /// Faults whose log was still delivered by a retry.
    pub recovered: u64,
    /// Faults resolved by the escalation policy instead.
    pub escalated: u64,
    /// Faults neither recovered nor escalated — must be zero.
    pub unresolved: u64,
    /// Scenarios that exhausted the cycle budget — must be zero.
    pub hangs: u64,
}

/// The campaign result: per-class rows plus the scenario detail lines.
#[derive(Debug)]
pub struct FaultMatrix {
    /// One aggregate row per fault class, in [`FaultClass::ALL`] order.
    pub rows: Vec<(FaultClass, MatrixRow)>,
    /// Per-scenario detail lines, in submission order.
    pub detail: Vec<String>,
    /// Scenarios whose job failed outright (error string per scenario).
    pub failures: Vec<String>,
}

impl FaultMatrix {
    /// Whether every injected fault was detected or recovered and no run
    /// hung — the campaign's pass criterion.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
            && self
                .rows
                .iter()
                .all(|(_, r)| r.unresolved == 0 && r.hangs == 0 && r.injected > 0)
    }

    /// Renders the matrix (and the detail table when `verbose`).
    #[must_use]
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Fault-injection campaign: detection / recovery matrix");
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>9} {:>9} {:>10} {:>10} {:>11} {:>6}",
            "Class",
            "Runs",
            "Injected",
            "Detected",
            "Recovered",
            "Escalated",
            "Unresolved",
            "Hangs"
        );
        let _ = writeln!(out, "{}", "-".repeat(84));
        for (class, r) in &self.rows {
            let _ = writeln!(
                out,
                "{:<18} {:>5} {:>9} {:>9} {:>10} {:>10} {:>11} {:>6}",
                class.name(),
                r.runs,
                r.injected,
                r.detected,
                r.recovered,
                r.escalated,
                r.unresolved,
                r.hangs
            );
        }
        if verbose {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{:<10} {:<18} {:>4} {:>6} {:<7} {:>8} {:>8} {:>9} {:>9} {:>10}  outcome",
                "kernel",
                "class",
                "1-in",
                "seed",
                "policy",
                "injected",
                "detected",
                "recovered",
                "escalated",
                "unresolved"
            );
            for line in &self.detail {
                out.push_str(line);
            }
        }
        for failure in &self.failures {
            let _ = writeln!(out, "FAILED: {failure}");
        }
        let _ = writeln!(
            out,
            "\nverdict: {}",
            if self.clean() {
                "every injected fault detected or recovered; no hangs"
            } else {
                "UNRESOLVED FAULTS OR HANGS — see rows above"
            }
        );
        out
    }
}

/// The scenario list for one fault campaign.
pub struct FaultPlan {
    scenarios: Vec<Arc<FaultScenarioJob>>,
}

impl FaultPlan {
    /// Builds the scenario grid: each kernel × each fault class × each seed
    /// × each policy, at the class's default rate.
    #[must_use]
    pub fn build(kernels: &[&'static str], seeds: &[u64], policies: &[FailPolicy]) -> FaultPlan {
        let mut scenarios = Vec::new();
        for &kernel in kernels {
            for &class in &FaultClass::ALL {
                for &seed in seeds {
                    for &policy in policies {
                        scenarios.push(Arc::new(FaultScenarioJob {
                            kernel,
                            class,
                            one_in: default_rate(class),
                            seed,
                            policy,
                        }));
                    }
                }
            }
        }
        FaultPlan { scenarios }
    }

    /// The small fixed grid for the CI smoke step: one kernel, one seed,
    /// both policies — every class still covered.
    #[must_use]
    pub fn smoke() -> FaultPlan {
        FaultPlan::build(
            &["fib"],
            &[11],
            &[FailPolicy::FailClosed, FailPolicy::FailOpen],
        )
    }

    /// The job list, in submission order.
    #[must_use]
    pub fn jobs(&self) -> Vec<Arc<dyn Job>> {
        self.scenarios
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn Job>)
            .collect()
    }

    /// Number of scenarios.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Folds the pool outputs into the per-class matrix.
    #[must_use]
    pub fn assemble(&self, outcome: &CampaignOutcome) -> FaultMatrix {
        let mut per_class = [MatrixRow::default(); FaultClass::ALL.len()];
        let mut detail = Vec::new();
        let mut failures = Vec::new();
        for (i, scenario) in self.scenarios.iter().enumerate() {
            let Some(output) = outcome.output(i) else {
                failures.push(scenario.label());
                continue;
            };
            let row = &mut per_class[scenario.class.index()];
            let count = |name: &str| output.metric(name).unwrap_or(0.0) as u64;
            row.runs += 1;
            row.injected += count("injected");
            row.detected += count("detected");
            row.recovered += count("recovered");
            row.escalated += count("escalated");
            row.unresolved += count("unresolved");
            row.hangs += count("hung");
            detail.push(output.artifact.clone());
        }
        FaultMatrix {
            rows: FaultClass::ALL
                .iter()
                .map(|&c| (c, per_class[c.index()]))
                .collect(),
            detail,
            failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_plan_covers_every_class() {
        let plan = FaultPlan::smoke();
        assert_eq!(plan.len(), FaultClass::ALL.len() * 2);
        let mut hashes: Vec<u64> = plan
            .jobs()
            .iter()
            .map(|j| j.descriptor().content_hash())
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), plan.len(), "distinct cache keys");
    }

    #[test]
    fn empty_matrix_is_not_clean() {
        let plan = FaultPlan::build(&[], &[], &[]);
        assert!(plan.is_empty());
    }

    #[test]
    fn every_class_has_a_nonzero_default_rate() {
        for class in FaultClass::ALL {
            assert!(default_rate(class) > 0, "{class:?}");
        }
    }
}
