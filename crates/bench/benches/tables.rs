//! One Criterion bench per paper table: regenerating each artifact is the
//! benchmark body, so `cargo bench` both times the harness and proves every
//! table still reproduces.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Table I runs real firmware on the Ibex model three times; time one
    // full regeneration.
    c.bench_function("table1_firmware_breakdown", |b| {
        b.iter(|| black_box(titancfi_bench::table1()))
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_comparison_depth1", |b| {
        b.iter(|| black_box(titancfi_bench::table2()))
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_full_suite_depth8", |b| {
        b.iter(|| black_box(titancfi_bench::table3()))
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4_fpga_resources", |b| {
        b.iter(|| black_box(titancfi_bench::table4()))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3, bench_table4
}
criterion_main!(tables);
