//! One bench per paper table: regenerating each artifact is the benchmark
//! body, so `cargo bench` both times the harness and proves every table
//! still reproduces.
//!
//! Self-timed via `titancfi_harness::timing` (no criterion; the workspace
//! builds dependency-free).

use std::hint::black_box;
use titancfi_harness::timing::bench;

fn main() {
    // Table I runs real firmware on the Ibex model three times; time one
    // full regeneration.
    bench("table1_firmware_breakdown", || {
        black_box(titancfi_bench::table1())
    });
    bench("table2_comparison_depth1", || {
        black_box(titancfi_bench::table2())
    });
    bench("table3_full_suite_depth8", || {
        black_box(titancfi_bench::table3())
    });
    bench("table4_fpga_resources", || {
        black_box(titancfi_bench::table4())
    });
}
