//! Microbenchmarks of the simulation hot paths: the decoder, the CFI
//! filter, the queue, the commit-log packer, the trace model, and the
//! crypto primitives. These bound how fast the full-system simulation can
//! go and catch performance regressions in the core data structures.
//!
//! Self-timed via `titancfi_harness::timing` (no criterion; the workspace
//! builds dependency-free). Run with `cargo bench -p titancfi-bench`.

use std::hint::black_box;
use titancfi::{CfiQueue, CommitLog};
use titancfi_harness::timing::{bench, bench_throughput};
use titancfi_obs::{NoProbe, Probe, Recorder};
use titancfi_trace::{simulate, Trace};

fn bench_decode() {
    // A realistic mix of encodings.
    let words: Vec<u32> = vec![
        0x0015_0513, // addi
        0x00c5_8533, // add
        0x0080_00ef, // jal ra (call)
        0x0000_8067, // ret
        0x0101_3503, // ld
        0x0011_3423, // sd
        0xfe05_1ce3, // bne
        0x02c5_8533, // mul
    ];
    let n = words.len() as u64;
    bench_throughput("decode/decode32_mix", n, || {
        for &w in &words {
            black_box(riscv_isa::decode(black_box(w), riscv_isa::Xlen::Rv64).unwrap());
        }
    });
    bench_throughput("decode/classify_raw_mix", n, || {
        for &w in &words {
            black_box(riscv_isa::classify_raw(black_box(w)));
        }
    });
}

fn bench_commit_log() {
    let log = CommitLog {
        pc: 0x8000_0000_1234_5678,
        insn: 0x0000_8067,
        next: 0x8000_0000_1234_567c,
        target: 0x8000_0000_0000_4444,
    };
    bench("commit_log_pack_unpack", || {
        let words = black_box(&log).to_words();
        black_box(CommitLog::from_words(&words))
    });
}

fn bench_queue() {
    let log = CommitLog {
        pc: 0,
        insn: 0x0000_8067,
        next: 4,
        target: 8,
    };
    let mut q = CfiQueue::new(8);
    bench("cfi_queue_push_pop_depth8", || {
        for _ in 0..8 {
            q.push(black_box(log));
        }
        for _ in 0..8 {
            black_box(q.pop());
        }
    });
}

fn bench_probe_overhead() {
    // The observability contract: the `_probed` hot-path variants driven by
    // `NoProbe` (instrumentation disabled — the default simulation path)
    // must cost the same as the plain calls. Compare the two queue loops
    // directly; a live `Recorder` shows what enabling instrumentation adds.
    let log = CommitLog {
        pc: 0,
        insn: 0x0000_8067,
        next: 4,
        target: 8,
    };
    let mut q = CfiQueue::new(8);
    let mut noprobe = NoProbe;
    bench("probe/queue_depth8_noprobe", || {
        for cycle in 0..8 {
            q.push_probed(black_box(log), cycle, &mut noprobe);
        }
        for cycle in 0..8 {
            black_box(q.pop_probed(cycle, &mut noprobe));
        }
    });
    let mut recorder = Recorder::new();
    bench("probe/queue_depth8_recording", || {
        for cycle in 0..8 {
            q.push_probed(black_box(log), cycle, &mut recorder);
        }
        for cycle in 0..8 {
            black_box(q.pop_probed(cycle, &mut recorder));
        }
    });
    bench_throughput("probe/counter_add_recording", 1, || {
        recorder.counter_add("bench.counter", black_box(1));
    });
}

fn bench_trace_model() {
    // A 100k-event bursty trace, similar to the `mm` benchmark's density.
    let mut cf = Vec::with_capacity(100_000);
    for i in 0..100_000u64 {
        cf.push(i * 6);
    }
    let trace = Trace::from_cf_cycles(cf, 1_000_000);
    bench_throughput("trace_model/simulate_100k_events_depth8", 100_000, || {
        black_box(simulate(black_box(&trace), 267, 8))
    });
}

fn bench_crypto() {
    let engine = opentitan_model::HmacEngine::new(b"bench-key");
    let page = vec![0xa5u8; 4096];
    bench_throughput("crypto/sha256_4k", 4096, || {
        black_box(opentitan_model::sha256::sha256(black_box(&page)))
    });
    bench_throughput("crypto/hmac_spill_page_4k", 4096, || {
        black_box(engine.mac(black_box(&page)))
    });
}

fn bench_cva6_throughput() {
    // Simulated instructions per second on a numeric kernel, with and
    // without the predecoded-instruction cache (the fast path's headline
    // win: decode once per pc, execute from the cache thereafter).
    let kernel = titancfi_workloads::Kernel::by_name("matmult-int").expect("kernel");
    let prog = kernel.program().expect("assembles");
    for (name, predecode) in [
        ("cva6_sim_matmult_predecode", true),
        ("cva6_sim_matmult_rawdecode", false),
    ] {
        bench(name, || {
            let mut core = cva6_model::Cva6Core::new(
                black_box(&prog),
                titancfi_workloads::KERNEL_MEM,
                cva6_model::TimingConfig::default(),
            );
            core.set_predecode(predecode);
            black_box(core.run_silent(100_000_000))
        });
    }
}

fn bench_bus_dispatch() {
    // The ibex-model bus resolves each access by scanning its region list;
    // a single-entry last-hit memo makes the common same-region streak a
    // one-compare dispatch. Pin both shapes: a streak that always hits the
    // memo, and a ping-pong between two regions that always misses it.
    use ibex_model::{RegionKind, RegionLatency, SystemBus};
    use riscv_isa::{Bus, MemWidth};
    let mut bus = SystemBus::new();
    bus.add_ram(
        0x1000_0000,
        0x1000,
        RegionKind::RotPrivate,
        RegionLatency::symmetric(1),
    );
    bus.add_ram(
        0x2000_0000,
        0x1000,
        RegionKind::Soc,
        RegionLatency::symmetric(1),
    );
    bench_throughput("bus/dispatch_same_region_streak", 64, || {
        for i in 0..64u64 {
            black_box(
                bus.read(0x1000_0000 + (i % 0x100) * 8, MemWidth::D)
                    .unwrap(),
            );
            bus.take_access();
        }
    });
    bench_throughput("bus/dispatch_alternating_regions", 64, || {
        for i in 0..64u64 {
            let base = if i % 2 == 0 { 0x1000_0000 } else { 0x2000_0000 };
            black_box(bus.read(base + (i % 0x100) * 8, MemWidth::D).unwrap());
            bus.take_access();
        }
    });
}

fn main() {
    bench_decode();
    bench_commit_log();
    bench_queue();
    bench_probe_overhead();
    bench_trace_model();
    bench_crypto();
    bench_cva6_throughput();
    bench_bus_dispatch();
}
