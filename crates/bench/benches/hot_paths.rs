//! Microbenchmarks of the simulation hot paths: the decoder, the CFI
//! filter, the queue, the commit-log packer, the trace model, and the
//! crypto primitives. These bound how fast the full-system simulation can
//! go and catch performance regressions in the core data structures.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use titancfi::{CfiQueue, CommitLog};
use titancfi_trace::{simulate, Trace};

fn bench_decode(c: &mut Criterion) {
    // A realistic mix of encodings.
    let words: Vec<u32> = vec![
        0x0015_0513, // addi
        0x00c5_8533, // add
        0x0080_00ef, // jal ra (call)
        0x0000_8067, // ret
        0x0101_3503, // ld
        0x0011_3423, // sd
        0xfe05_1ce3, // bne
        0x02c5_8533, // mul
    ];
    let mut group = c.benchmark_group("decode");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("decode32_mix", |b| {
        b.iter(|| {
            for &w in &words {
                black_box(riscv_isa::decode(black_box(w), riscv_isa::Xlen::Rv64).unwrap());
            }
        })
    });
    group.bench_function("classify_raw_mix", |b| {
        b.iter(|| {
            for &w in &words {
                black_box(riscv_isa::classify_raw(black_box(w)));
            }
        })
    });
    group.finish();
}

fn bench_commit_log(c: &mut Criterion) {
    let log = CommitLog {
        pc: 0x8000_0000_1234_5678,
        insn: 0x0000_8067,
        next: 0x8000_0000_1234_567c,
        target: 0x8000_0000_0000_4444,
    };
    c.bench_function("commit_log_pack_unpack", |b| {
        b.iter(|| {
            let words = black_box(&log).to_words();
            black_box(CommitLog::from_words(&words))
        })
    });
}

fn bench_queue(c: &mut Criterion) {
    let log = CommitLog { pc: 0, insn: 0x0000_8067, next: 4, target: 8 };
    c.bench_function("cfi_queue_push_pop_depth8", |b| {
        let mut q = CfiQueue::new(8);
        b.iter(|| {
            for _ in 0..8 {
                q.push(black_box(log));
            }
            for _ in 0..8 {
                black_box(q.pop());
            }
        })
    });
}

fn bench_trace_model(c: &mut Criterion) {
    // A 100k-event bursty trace, similar to the `mm` benchmark's density.
    let mut cf = Vec::with_capacity(100_000);
    for i in 0..100_000u64 {
        cf.push(i * 6);
    }
    let trace = Trace::from_cf_cycles(cf, 1_000_000);
    let mut group = c.benchmark_group("trace_model");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("simulate_100k_events_depth8", |b| {
        b.iter(|| black_box(simulate(black_box(&trace), 267, 8)))
    });
    group.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let engine = opentitan_model::HmacEngine::new(b"bench-key");
    let page = vec![0xa5u8; 4096];
    let mut group = c.benchmark_group("crypto");
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("sha256_4k", |b| {
        b.iter(|| black_box(opentitan_model::sha256::sha256(black_box(&page))))
    });
    group.bench_function("hmac_spill_page_4k", |b| {
        b.iter(|| black_box(engine.mac(black_box(&page))))
    });
    group.finish();
}

fn bench_cva6_throughput(c: &mut Criterion) {
    // Simulated instructions per second on a numeric kernel.
    let kernel = titancfi_workloads::Kernel::by_name("matmult-int").expect("kernel");
    let prog = kernel.program().expect("assembles");
    c.bench_function("cva6_sim_matmult", |b| {
        b.iter(|| {
            let mut core = cva6_model::Cva6Core::new(
                black_box(&prog),
                titancfi_workloads::KERNEL_MEM,
                cva6_model::TimingConfig::default(),
            );
            black_box(core.run_silent(100_000_000))
        })
    });
}

criterion_group! {
    name = hot_paths;
    config = Criterion::default().sample_size(20);
    targets = bench_decode, bench_commit_log, bench_queue, bench_trace_model,
              bench_crypto, bench_cva6_throughput
}
criterion_main!(hot_paths);
