//! Ablation benches for the design choices DESIGN.md calls out:
//! queue depth, firmware variant, shadow-stack spill threshold, and the
//! dual-commit-port conflict rate.
//!
//! Self-timed via `titancfi_harness::timing` (no criterion; the workspace
//! builds dependency-free). Run with `cargo bench -p titancfi-bench`.

use std::hint::black_box;
use titancfi::firmware::{FirmwareKind, FirmwareRunner};
use titancfi_harness::timing::bench;
use titancfi_policies::{CfiPolicy, ShadowStackPolicy};
use titancfi_trace::simulate;
use titancfi_workloads::published::{table3_row, LATENCY_IRQ};
use titancfi_workloads::synthetic::trace_for;

/// Queue depth sweep on the heaviest published benchmark (`mm`). The
/// reported metric inside each measurement is stall cycles; the runner
/// times the sweep itself.
fn bench_queue_depth() {
    let row = table3_row("mm").expect("mm row");
    let trace = trace_for(row, 1);
    for depth in [1usize, 2, 4, 8, 16, 32] {
        bench(&format!("queue_depth_ablation/{depth}"), || {
            black_box(simulate(black_box(&trace), LATENCY_IRQ, depth))
        });
    }
}

/// Per-check wall cost of the cycle-accurate firmware simulation, per
/// variant — how expensive it is to check one commit log in the RoT.
fn bench_firmware_variant() {
    let call = titancfi_bench::sample_call();
    let ret = titancfi_bench::sample_ret();
    for kind in FirmwareKind::ALL {
        let mut fw = FirmwareRunner::new(kind);
        bench(&format!("firmware_variant/{}", kind.name()), || {
            black_box(fw.check(black_box(&call)));
            black_box(fw.check(black_box(&ret)));
        });
    }
}

/// Spill-threshold ablation: a deep call burst against shadow stacks of
/// shrinking resident capacity — smaller capacity means more HMAC spills.
fn bench_spill_threshold() {
    let stream = titancfi_policies::attacks::nested_call_stream(0x8000_0000, 512);
    for capacity in [64usize, 128, 256, 1024] {
        bench(&format!("spill_threshold/{capacity}"), || {
            let mut ss = ShadowStackPolicy::new(capacity);
            for log in &stream {
                black_box(ss.check(black_box(log)));
            }
            black_box(ss.stats())
        });
    }
}

/// Full-system run of a call-dense kernel: the end-to-end co-simulation
/// cost, including the dual-commit-port conflict handling.
fn bench_full_system() {
    let kernel = titancfi_workloads::Kernel::by_name("fib").expect("fib");
    let prog = kernel.program().expect("assembles");
    bench("full_system_fib", || {
        let mut soc = titancfi_soc::SystemOnChip::new(
            black_box(&prog),
            titancfi_soc::SocConfig {
                mem_size: titancfi_workloads::KERNEL_MEM,
                ..titancfi_soc::SocConfig::default()
            },
        );
        black_box(soc.run(100_000_000))
    });
}

/// Dual-core vs single-core: the shared RoT serialises checks from both
/// cores; this times the co-simulation and lets the reported cycle counts
/// show the contention.
fn bench_multicore() {
    let fib = titancfi_workloads::Kernel::by_name("fib")
        .expect("fib")
        .program()
        .expect("ok");
    let towers = titancfi_workloads::Kernel::by_name("towers")
        .expect("towers")
        .program()
        .expect("ok");
    bench("dual_core_fib_towers", || {
        let mut soc = titancfi_soc::DualHostSoc::new([&fib, &towers], 1 << 20, 8);
        black_box(soc.run(1_000_000_000))
    });
}

/// D-cache on vs off on a memory-heavy kernel (timing realism ablation).
fn bench_dcache() {
    let kernel = titancfi_workloads::Kernel::by_name("memcpy").expect("memcpy");
    let prog = kernel.program().expect("ok");
    for (name, dcache) in [
        ("ideal", None),
        ("cva6_32k", Some(cva6_model::CacheConfig::cva6_default())),
    ] {
        bench(&format!("dcache_ablation/{name}"), || {
            let mut core = cva6_model::Cva6Core::new(
                black_box(&prog),
                titancfi_workloads::KERNEL_MEM,
                cva6_model::TimingConfig {
                    dcache,
                    ..cva6_model::TimingConfig::default()
                },
            );
            black_box(core.run_silent(100_000_000))
        });
    }
}

fn main() {
    bench_queue_depth();
    bench_firmware_variant();
    bench_spill_threshold();
    bench_full_system();
    bench_multicore();
    bench_dcache();
}
