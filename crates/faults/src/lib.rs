//! Deterministic seeded fault injection for the TitanCFI CFI transport.
//!
//! The co-simulation's premise is that the RoT is the *trusted* anchor for
//! CFI — which means the transport carrying commit logs to it must degrade
//! gracefully when the physical layer misbehaves. This crate provides the
//! fault model: a [`FaultInjector`] that components on the CFI path query at
//! well-defined injection sites (AXI beats, doorbell rings, firmware check
//! entry), driven by the in-repo xoshiro256** PRNG from a fixed seed so
//! every campaign run is bit-reproducible and cacheable.
//!
//! The injector doubles as a *ledger*: every fault it hands out is tracked
//! through the resilience machinery's feedback calls
//! ([`FaultInjector::note_detected`], [`FaultInjector::note_completed`],
//! [`FaultInjector::note_escalated`]) so a campaign can prove that every
//! injected fault was either recovered (a retry succeeded) or escalated
//! (fail-closed/fail-open policy fired) — never silently lost.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{Arc, Mutex};
use titancfi_harness::Xoshiro256;

/// The classes of fault the injector can produce, one per injection site
/// behaviour. Rates are configured per class in [`FaultConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultClass {
    /// An AXI write beat on the Log Writer path errors (SLVERR); the beat
    /// must be replayed.
    AxiBeatError,
    /// An AXI write beat completes late (interconnect congestion).
    AxiExtraLatency,
    /// The doorbell ring is dropped on the floor (write never lands).
    DoorbellDrop,
    /// The doorbell ring is stuck in a buffer and delivered late.
    DoorbellDelay,
    /// A single bit flips in a mailbox data word after the host wrote it.
    BitFlip,
    /// The RoT firmware glitches at check entry and restarts from the poll
    /// loop (transient upset; the check re-runs from scratch).
    FirmwareGlitch,
    /// The RoT firmware wedges at check entry and never completes.
    FirmwareHang,
    /// The RoT firmware traps at check entry (illegal instruction).
    FirmwareTrap,
}

impl FaultClass {
    /// Every class, in matrix-row order.
    pub const ALL: [FaultClass; 8] = [
        FaultClass::AxiBeatError,
        FaultClass::AxiExtraLatency,
        FaultClass::DoorbellDrop,
        FaultClass::DoorbellDelay,
        FaultClass::BitFlip,
        FaultClass::FirmwareGlitch,
        FaultClass::FirmwareHang,
        FaultClass::FirmwareTrap,
    ];

    /// Stable kebab-case name (used in campaign descriptors and the matrix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::AxiBeatError => "axi-beat-error",
            FaultClass::AxiExtraLatency => "axi-extra-latency",
            FaultClass::DoorbellDrop => "doorbell-drop",
            FaultClass::DoorbellDelay => "doorbell-delay",
            FaultClass::BitFlip => "bit-flip",
            FaultClass::FirmwareGlitch => "firmware-glitch",
            FaultClass::FirmwareHang => "firmware-hang",
            FaultClass::FirmwareTrap => "firmware-trap",
        }
    }

    /// Inverse of [`FaultClass::name`].
    #[must_use]
    pub fn by_name(name: &str) -> Option<FaultClass> {
        FaultClass::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Position of this class in [`FaultClass::ALL`] (stable array index
    /// for per-class aggregation).
    #[must_use]
    pub fn index(self) -> usize {
        FaultClass::ALL
            .iter()
            .position(|c| *c == self)
            .expect("class is in ALL")
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class injection rates. Each rate is a "one in N opportunities"
/// probability: 0 disables the class, 1 fires at every opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// PRNG seed; identical seeds replay identical fault schedules.
    pub seed: u64,
    /// One-in-N chance an AXI write beat errors and must be replayed.
    pub axi_beat_error: u32,
    /// One-in-N chance an AXI write beat is delayed.
    pub axi_extra_latency: u32,
    /// Maximum extra cycles added to a delayed beat (uniform in `1..=max`).
    pub max_extra_latency: u64,
    /// One-in-N chance a doorbell ring is dropped.
    pub doorbell_drop: u32,
    /// One-in-N chance a doorbell ring is delivered late.
    pub doorbell_delay: u32,
    /// Maximum doorbell delivery delay in cycles (uniform in `1..=max`).
    pub max_doorbell_delay: u64,
    /// One-in-N chance a single bit flips in a beat's mailbox words.
    pub bit_flip: u32,
    /// One-in-N chance the firmware glitches at check entry.
    pub firmware_glitch: u32,
    /// One-in-N chance the firmware hangs at check entry.
    pub firmware_hang: u32,
    /// One-in-N chance the firmware traps at check entry.
    pub firmware_trap: u32,
}

impl FaultConfig {
    /// All classes disabled; attaching this injector is provably inert.
    #[must_use]
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            axi_beat_error: 0,
            axi_extra_latency: 0,
            max_extra_latency: 32,
            doorbell_drop: 0,
            doorbell_delay: 0,
            max_doorbell_delay: 256,
            bit_flip: 0,
            firmware_glitch: 0,
            firmware_hang: 0,
            firmware_trap: 0,
        }
    }

    /// Exactly one class enabled at rate one-in-`one_in`.
    #[must_use]
    pub fn only(class: FaultClass, one_in: u32, seed: u64) -> FaultConfig {
        let mut c = FaultConfig::none(seed);
        match class {
            FaultClass::AxiBeatError => c.axi_beat_error = one_in,
            FaultClass::AxiExtraLatency => c.axi_extra_latency = one_in,
            FaultClass::DoorbellDrop => c.doorbell_drop = one_in,
            FaultClass::DoorbellDelay => c.doorbell_delay = one_in,
            FaultClass::BitFlip => c.bit_flip = one_in,
            FaultClass::FirmwareGlitch => c.firmware_glitch = one_in,
            FaultClass::FirmwareHang => c.firmware_hang = one_in,
            FaultClass::FirmwareTrap => c.firmware_trap = one_in,
        }
        c
    }

    /// Whether any class can fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.axi_beat_error != 0
            || self.axi_extra_latency != 0
            || self.doorbell_drop != 0
            || self.doorbell_delay != 0
            || self.bit_flip != 0
            || self.firmware_glitch != 0
            || self.firmware_hang != 0
            || self.firmware_trap != 0
    }
}

/// Outcome of an AXI-beat injection-site query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BeatFault {
    /// The beat proceeds normally.
    #[default]
    None,
    /// The beat errors; the Log Writer must replay it.
    Error,
    /// The beat lands this many cycles late.
    ExtraLatency(u64),
    /// A single bit flips in one of the beat's two 32-bit mailbox words.
    BitFlip {
        /// Which of the beat's words is corrupted (0 = low, 1 = high).
        word: usize,
        /// Bit position within the word.
        bit: u32,
    },
}

/// Outcome of a doorbell-ring injection-site query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingFault {
    /// The ring lands normally.
    #[default]
    None,
    /// The ring is lost; only the watchdog can notice.
    Drop,
    /// The ring is delivered this many cycles late.
    Delay(u64),
}

/// Outcome of a firmware check-entry injection-site query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckFault {
    /// The check runs normally.
    #[default]
    None,
    /// Transient upset: the firmware restarts the check from the poll loop.
    Glitch,
    /// The firmware wedges and never signals completion.
    Hang,
    /// The firmware traps.
    Trap,
}

/// Per-class ledger counters. Every injected fault ends in exactly one of
/// `recovered`, `escalated`, or `unresolved`; `detected` counts how many
/// were flagged by the resilience layer before resolution (a recovered
/// delayed beat, for example, may never be *detected* — it just costs
/// latency — while a dropped doorbell is detected by the watchdog first).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Faults handed out at this site.
    pub injected: u64,
    /// Faults flagged by the resilience layer (watchdog, integrity check,
    /// AXI error response, trap report).
    pub detected: u64,
    /// Faults absorbed: the transaction they hit eventually completed.
    pub recovered: u64,
    /// Faults that exhausted retries and fired the fail-closed/fail-open
    /// policy (or halted the run on a firmware trap).
    pub escalated: u64,
    /// Faults still pending when the report was taken — a nonzero value
    /// means the resilience layer lost track of an injected fault.
    pub unresolved: u64,
}

impl ClassStats {
    fn add(&mut self, other: &ClassStats) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.recovered += other.recovered;
        self.escalated += other.escalated;
        self.unresolved += other.unresolved;
    }
}

/// Snapshot of the injector's ledger, one row per fault class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// `(class, stats)` in [`FaultClass::ALL`] order.
    pub classes: Vec<(FaultClass, ClassStats)>,
}

impl FaultReport {
    /// Column-wise sum over all classes.
    #[must_use]
    pub fn total(&self) -> ClassStats {
        let mut t = ClassStats::default();
        for (_, s) in &self.classes {
            t.add(s);
        }
        t
    }

    /// Stats for one class.
    #[must_use]
    pub fn class(&self, class: FaultClass) -> ClassStats {
        self.classes
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Whether every injected fault was recovered or escalated.
    #[must_use]
    pub fn all_resolved(&self) -> bool {
        self.total().unresolved == 0
    }
}

/// Ledger state for one class: faults in flight split by whether the
/// resilience layer has flagged them yet.
#[derive(Debug, Clone, Copy, Default)]
struct Ledger {
    stats: ClassStats,
    pending_undetected: u64,
    pending_detected: u64,
}

impl Ledger {
    fn inject(&mut self) {
        self.stats.injected += 1;
        self.pending_undetected += 1;
    }

    fn detect(&mut self) {
        self.stats.detected += self.pending_undetected;
        self.pending_detected += self.pending_undetected;
        self.pending_undetected = 0;
    }

    fn complete(&mut self) {
        self.stats.recovered += self.pending_undetected + self.pending_detected;
        self.pending_undetected = 0;
        self.pending_detected = 0;
    }

    fn escalate(&mut self) {
        // Escalation is itself a detection for anything still silent.
        self.stats.detected += self.pending_undetected;
        self.stats.escalated += self.pending_undetected + self.pending_detected;
        self.pending_undetected = 0;
        self.pending_detected = 0;
    }

    fn snapshot(&self) -> ClassStats {
        let mut s = self.stats;
        s.unresolved = self.pending_undetected + self.pending_detected;
        s
    }
}

#[derive(Debug)]
struct Inner {
    config: FaultConfig,
    rng: Xoshiro256,
    ledgers: [Ledger; FaultClass::ALL.len()],
}

impl Inner {
    /// One-in-`rate` draw; 0 disables, 1 always fires. The PRNG is consumed
    /// only for enabled classes so a disabled injector is stream-inert.
    fn fires(&mut self, rate: u32) -> bool {
        rate != 0 && self.rng.below(u64::from(rate)) == 0
    }

    fn inject(&mut self, class: FaultClass) {
        self.ledgers[class.index()].inject();
    }
}

/// The seeded fault source and ledger, shared between the Log Writer, the
/// mailbox path, and the SoC's firmware scheduler. Cloning is cheap and all
/// clones share one PRNG stream and ledger.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    inner: Arc<Mutex<Inner>>,
}

impl FaultInjector {
    /// A fresh injector; the schedule is fully determined by `config`.
    #[must_use]
    pub fn new(config: FaultConfig) -> FaultInjector {
        FaultInjector {
            inner: Arc::new(Mutex::new(Inner {
                config,
                rng: Xoshiro256::new(config.seed),
                ledgers: [Ledger::default(); FaultClass::ALL.len()],
            })),
        }
    }

    /// The configuration this injector was built with.
    #[must_use]
    pub fn config(&self) -> FaultConfig {
        self.inner.lock().expect("injector lock").config
    }

    /// Injection site: the Log Writer is about to issue AXI write beat
    /// `beat` of a log. At most one fault fires per beat (error wins over
    /// flip wins over latency, so rates compose predictably).
    pub fn beat_fault(&self, beat: usize) -> BeatFault {
        let _ = beat;
        let mut g = self.inner.lock().expect("injector lock");
        let cfg = g.config;
        if g.fires(cfg.axi_beat_error) {
            g.inject(FaultClass::AxiBeatError);
            return BeatFault::Error;
        }
        if g.fires(cfg.bit_flip) {
            g.inject(FaultClass::BitFlip);
            let word = g.rng.below(2) as usize;
            let bit = g.rng.below(32) as u32;
            return BeatFault::BitFlip { word, bit };
        }
        if g.fires(cfg.axi_extra_latency) {
            g.inject(FaultClass::AxiExtraLatency);
            let extra = 1 + g.rng.below(cfg.max_extra_latency.max(1));
            return BeatFault::ExtraLatency(extra);
        }
        BeatFault::None
    }

    /// Injection site: the Log Writer is about to ring the doorbell.
    pub fn ring_fault(&self) -> RingFault {
        let mut g = self.inner.lock().expect("injector lock");
        let cfg = g.config;
        if g.fires(cfg.doorbell_drop) {
            g.inject(FaultClass::DoorbellDrop);
            return RingFault::Drop;
        }
        if g.fires(cfg.doorbell_delay) {
            g.inject(FaultClass::DoorbellDelay);
            let delay = 1 + g.rng.below(cfg.max_doorbell_delay.max(1));
            return RingFault::Delay(delay);
        }
        RingFault::None
    }

    /// Injection site: the RoT firmware is entering a check (doorbell seen).
    pub fn check_fault(&self) -> CheckFault {
        let mut g = self.inner.lock().expect("injector lock");
        let cfg = g.config;
        if g.fires(cfg.firmware_trap) {
            g.inject(FaultClass::FirmwareTrap);
            return CheckFault::Trap;
        }
        if g.fires(cfg.firmware_hang) {
            g.inject(FaultClass::FirmwareHang);
            return CheckFault::Hang;
        }
        if g.fires(cfg.firmware_glitch) {
            g.inject(FaultClass::FirmwareGlitch);
            return CheckFault::Glitch;
        }
        CheckFault::None
    }

    /// Feedback: the resilience layer flagged faults of `class` (AXI error
    /// response observed, integrity check rejected a ring, trap reported).
    pub fn note_detected(&self, class: FaultClass) {
        self.inner.lock().expect("injector lock").ledgers[class.index()].detect();
    }

    /// Feedback: the watchdog fired — every fault still silently pending on
    /// the in-flight transaction is now detected.
    pub fn note_watchdog(&self) {
        let mut g = self.inner.lock().expect("injector lock");
        for l in &mut g.ledgers {
            l.detect();
        }
    }

    /// Feedback: the in-flight log completed end-to-end — every pending
    /// fault was absorbed by the transport and counts as recovered.
    pub fn note_completed(&self) {
        let mut g = self.inner.lock().expect("injector lock");
        for l in &mut g.ledgers {
            l.complete();
        }
    }

    /// Feedback: retries were exhausted (or the RoT trapped) and the
    /// escalation policy fired — every pending fault is accounted to it.
    pub fn note_escalated(&self) {
        let mut g = self.inner.lock().expect("injector lock");
        for l in &mut g.ledgers {
            l.escalate();
        }
    }

    /// Snapshot the ledger.
    #[must_use]
    pub fn report(&self) -> FaultReport {
        let g = self.inner.lock().expect("injector lock");
        FaultReport {
            classes: FaultClass::ALL
                .iter()
                .map(|c| (*c, g.ledgers[c.index()].snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_never_fires() {
        let inj = FaultInjector::new(FaultConfig::none(42));
        for beat in 0..1000 {
            assert_eq!(inj.beat_fault(beat % 4), BeatFault::None);
            assert_eq!(inj.ring_fault(), RingFault::None);
            assert_eq!(inj.check_fault(), CheckFault::None);
        }
        let report = inj.report();
        assert_eq!(report.total(), ClassStats::default());
        assert!(report.all_resolved());
    }

    #[test]
    fn same_seed_same_schedule() {
        let draw = |seed: u64| {
            let cfg = FaultConfig {
                axi_beat_error: 7,
                bit_flip: 5,
                axi_extra_latency: 3,
                doorbell_drop: 11,
                firmware_glitch: 13,
                ..FaultConfig::none(seed)
            };
            let inj = FaultInjector::new(cfg);
            let mut schedule = Vec::new();
            for i in 0..500 {
                schedule.push((inj.beat_fault(i % 4), inj.ring_fault(), inj.check_fault()));
            }
            schedule
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn rate_one_always_fires() {
        let inj = FaultInjector::new(FaultConfig::only(FaultClass::DoorbellDrop, 1, 9));
        for _ in 0..10 {
            assert_eq!(inj.ring_fault(), RingFault::Drop);
        }
        assert_eq!(inj.report().class(FaultClass::DoorbellDrop).injected, 10);
    }

    #[test]
    fn ledger_tracks_detection_and_recovery() {
        let inj = FaultInjector::new(FaultConfig::only(FaultClass::DoorbellDrop, 1, 9));
        assert_eq!(inj.ring_fault(), RingFault::Drop);
        let mid = inj.report().class(FaultClass::DoorbellDrop);
        assert_eq!(mid.injected, 1);
        assert_eq!(mid.unresolved, 1);
        inj.note_watchdog();
        inj.note_completed();
        let done = inj.report().class(FaultClass::DoorbellDrop);
        assert_eq!(done.detected, 1);
        assert_eq!(done.recovered, 1);
        assert_eq!(done.unresolved, 0);
        assert!(inj.report().all_resolved());
    }

    #[test]
    fn escalation_counts_as_detection() {
        let inj = FaultInjector::new(FaultConfig::only(FaultClass::BitFlip, 1, 3));
        let fault = inj.beat_fault(0);
        assert!(matches!(fault, BeatFault::BitFlip { .. }));
        inj.note_escalated();
        let s = inj.report().class(FaultClass::BitFlip);
        assert_eq!(s.detected, 1);
        assert_eq!(s.escalated, 1);
        assert_eq!(s.recovered, 0);
        assert!(inj.report().all_resolved());
    }

    #[test]
    fn class_names_round_trip() {
        for c in FaultClass::ALL {
            assert_eq!(FaultClass::by_name(c.name()), Some(c));
        }
        assert_eq!(FaultClass::by_name("nonsense"), None);
    }
}
