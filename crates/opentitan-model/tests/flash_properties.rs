//! Property tests for the scrambled, ECC-protected flash.

use opentitan_model::flash::{secded_decode, secded_encode, EccRead, Flash, Scrambler};
use proptest::prelude::*;

proptest! {
    /// Clean encode/decode round-trips for arbitrary words.
    #[test]
    fn secded_roundtrip(v in any::<u64>()) {
        let (d, p) = secded_encode(v);
        prop_assert_eq!(secded_decode(d, p), EccRead::Clean(v));
    }

    /// Any single stored-bit flip (data or parity) is corrected back to
    /// the original value.
    #[test]
    fn secded_corrects_any_single_flip(v in any::<u64>(), bit in 0u8..72) {
        let (mut d, mut p) = secded_encode(v);
        if bit < 64 {
            d ^= 1u64 << bit;
        } else {
            p ^= 1u8 << (bit - 64);
        }
        prop_assert_eq!(secded_decode(d, p).value(), Some(v), "bit {}", bit);
    }

    /// Any double flip is flagged uncorrectable — never silently
    /// miscorrected to a wrong value.
    #[test]
    fn secded_flags_any_double_flip(v in any::<u64>(), a in 0u8..72, b in 0u8..72) {
        prop_assume!(a != b);
        let (mut d, mut p) = secded_encode(v);
        for bit in [a, b] {
            if bit < 64 {
                d ^= 1u64 << bit;
            } else {
                p ^= 1u8 << (bit - 64);
            }
        }
        prop_assert_eq!(secded_decode(d, p), EccRead::Uncorrectable, "bits {} {}", a, b);
    }

    /// The scrambler is a bijection per address, and differently-keyed
    /// scramblers disagree.
    #[test]
    fn scrambler_bijective_and_keyed(key1 in any::<u64>(), key2 in any::<u64>(),
                                     addr in 0u64..4096, data in any::<u64>()) {
        let s1 = Scrambler::new(key1);
        prop_assert_eq!(s1.descramble(addr, s1.scramble(addr, data)), data);
        if key1 != key2 {
            let s2 = Scrambler::new(key2);
            // Not a hard guarantee per-word, but overwhelming for random keys.
            if s1.scramble(addr, data) == s2.scramble(addr, data) {
                // Allow rare collisions: check a second address too.
                prop_assert_ne!(
                    s1.scramble(addr + 1, data),
                    s2.scramble(addr + 1, data),
                    "two keys agreeing twice is a bug"
                );
            }
        }
    }

    /// Flash write/read with an arbitrary single fault still yields the
    /// stored value; plaintext never appears in the raw array.
    #[test]
    fn flash_end_to_end(key in any::<u64>(), value in any::<u64>(), bit in 0u8..72) {
        let mut f = Flash::new(64, key);
        f.write(7, value);
        if value != 0 && value.count_ones() > 8 {
            // Scrambled storage should not equal the plaintext for
            // non-trivial values (probabilistic, overwhelming).
            prop_assert_ne!(f.raw(7), value);
        }
        f.flip_bit(7, bit);
        prop_assert_eq!(f.read(7).value(), Some(value));
    }
}
