//! Randomized tests for the scrambled, ECC-protected flash, driven by the
//! workspace's seeded PRNG.

use opentitan_model::flash::{secded_decode, secded_encode, EccRead, Flash, Scrambler};
use titancfi_harness::Xoshiro256;

const CASES: usize = 1024;

/// Clean encode/decode round-trips for arbitrary words.
#[test]
fn secded_roundtrip() {
    let mut rng = Xoshiro256::new(0x5001);
    for _ in 0..CASES {
        let v = rng.next_u64();
        let (d, p) = secded_encode(v);
        assert_eq!(secded_decode(d, p), EccRead::Clean(v), "value {v:#x}");
    }
}

/// Any single stored-bit flip (data or parity) is corrected back to the
/// original value. Exhaustive over all 72 bit positions per value.
#[test]
fn secded_corrects_any_single_flip() {
    let mut rng = Xoshiro256::new(0x5002);
    for _ in 0..CASES / 8 {
        let v = rng.next_u64();
        for bit in 0u8..72 {
            let (mut d, mut p) = secded_encode(v);
            if bit < 64 {
                d ^= 1u64 << bit;
            } else {
                p ^= 1u8 << (bit - 64);
            }
            assert_eq!(
                secded_decode(d, p).value(),
                Some(v),
                "value {v:#x} bit {bit}"
            );
        }
    }
}

/// Any double flip is flagged uncorrectable — never silently miscorrected
/// to a wrong value.
#[test]
fn secded_flags_any_double_flip() {
    let mut rng = Xoshiro256::new(0x5003);
    for _ in 0..CASES {
        let v = rng.next_u64();
        let a = rng.below(72) as u8;
        let b = rng.below(72) as u8;
        if a == b {
            continue;
        }
        let (mut d, mut p) = secded_encode(v);
        for bit in [a, b] {
            if bit < 64 {
                d ^= 1u64 << bit;
            } else {
                p ^= 1u8 << (bit - 64);
            }
        }
        assert_eq!(
            secded_decode(d, p),
            EccRead::Uncorrectable,
            "value {v:#x} bits {a} {b}"
        );
    }
}

/// The scrambler is a bijection per address, and differently-keyed
/// scramblers disagree.
#[test]
fn scrambler_bijective_and_keyed() {
    let mut rng = Xoshiro256::new(0x5004);
    for _ in 0..CASES {
        let key1 = rng.next_u64();
        let key2 = rng.next_u64();
        let addr = rng.below(4096);
        let data = rng.next_u64();
        let s1 = Scrambler::new(key1);
        assert_eq!(s1.descramble(addr, s1.scramble(addr, data)), data);
        if key1 != key2 {
            let s2 = Scrambler::new(key2);
            // Not a hard guarantee per-word, but overwhelming for random keys.
            if s1.scramble(addr, data) == s2.scramble(addr, data) {
                // Allow rare collisions: check a second address too.
                assert_ne!(
                    s1.scramble(addr + 1, data),
                    s2.scramble(addr + 1, data),
                    "two keys agreeing twice is a bug"
                );
            }
        }
    }
}

/// Flash write/read with an arbitrary single fault still yields the stored
/// value; plaintext never appears in the raw array.
#[test]
fn flash_end_to_end() {
    let mut rng = Xoshiro256::new(0x5005);
    for _ in 0..CASES {
        let key = rng.next_u64();
        let value = rng.next_u64();
        let bit = rng.below(72) as u8;
        let mut f = Flash::new(64, key);
        f.write(7, value);
        if value != 0 && value.count_ones() > 8 {
            // Scrambled storage should not equal the plaintext for
            // non-trivial values (probabilistic, overwhelming).
            assert_ne!(f.raw(7), value);
        }
        f.flip_bit(7, bit);
        assert_eq!(f.read(7).value(), Some(value), "value {value:#x} bit {bit}");
    }
}
