//! Register-level SCMI channel: the wire format of the system mailbox.
//!
//! [`crate::scmi`] models the message-level protocol; this module is the
//! memory-mapped view the *host software* actually programs (paper §III-B:
//! "a set of general-purpose memory mapped registers meant for data
//! sharing" plus doorbell/completion). The SoC maps it into the host
//! address space; the RoT-side [`ScmiWireService`] polls the doorbell and
//! serves version and attestation requests.
//!
//! Register map (byte offsets):
//!
//! | offset | register |
//! |---|---|
//! | `0x00` | message type (1 = version, 2 = attest) |
//! | `0x04..0x14` | request payload (attestation nonce) |
//! | `0x20` | doorbell (host writes 1) |
//! | `0x24` | completion (RoT writes 1; host clears) |
//! | `0x28` | status (0 = ok, 1 = error) |
//! | `0x40..0x90` | response payload (measurement ‖ nonce ‖ tag) |

use crate::attestation::{Attestor, Challenge};
use crate::sha256::DIGEST_LEN;
use std::sync::{Arc, Mutex};

/// Window size in bytes.
pub const WINDOW: u64 = 0x100;
/// Message type: version query.
pub const MSG_VERSION: u32 = 1;
/// Message type: attestation challenge.
pub const MSG_ATTEST: u32 = 2;

/// Register offsets.
pub mod regs {
    /// Message type.
    pub const MSG_TYPE: u64 = 0x00;
    /// Request payload (16-byte nonce for attestation).
    pub const REQUEST: u64 = 0x04;
    /// Doorbell.
    pub const DOORBELL: u64 = 0x20;
    /// Completion.
    pub const COMPLETION: u64 = 0x24;
    /// Status.
    pub const STATUS: u64 = 0x28;
    /// Response payload.
    pub const RESPONSE: u64 = 0x40;
}

#[derive(Debug)]
struct Wire {
    bytes: [u8; WINDOW as usize],
}

impl Default for Wire {
    fn default() -> Wire {
        Wire {
            bytes: [0; WINDOW as usize],
        }
    }
}

/// The shared register file of the SCMI channel.
#[derive(Debug, Clone, Default)]
pub struct ScmiWire {
    shared: Arc<Mutex<Wire>>,
}

impl ScmiWire {
    /// A cleared channel.
    #[must_use]
    pub fn new() -> ScmiWire {
        ScmiWire::default()
    }

    /// Host-side read of up to 8 bytes at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses the window end.
    #[must_use]
    pub fn host_read(&self, offset: u64, len: u64) -> u64 {
        let w = self.shared.lock().expect("scmi wire lock");
        let mut v = 0u64;
        for i in (0..len).rev() {
            v = v << 8 | u64::from(w.bytes[(offset + i) as usize]);
        }
        v
    }

    /// Host-side write of the low `len` bytes of `value` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses the window end.
    pub fn host_write(&self, offset: u64, len: u64, value: u64) {
        let mut w = self.shared.lock().expect("scmi wire lock");
        for i in 0..len {
            w.bytes[(offset + i) as usize] = (value >> (8 * i)) as u8;
        }
    }

    fn doorbell(&self) -> bool {
        self.host_read(regs::DOORBELL, 4) & 1 != 0
    }
}

/// The RoT-side servant: polls the doorbell and serves requests.
#[derive(Debug)]
pub struct ScmiWireService {
    wire: ScmiWire,
    attestor: Attestor,
    version: u32,
    /// Requests served.
    pub served: u64,
    /// Accelerator cycles consumed by attestation requests.
    pub auth_cycles: u64,
}

impl ScmiWireService {
    /// A service over `wire`, attesting the booted `image`.
    #[must_use]
    pub fn new(wire: ScmiWire, attestation_key: &[u8], image: &[u8]) -> ScmiWireService {
        ScmiWireService {
            wire,
            attestor: Attestor::new(attestation_key, image),
            version: 0x0001_0000,
            served: 0,
            auth_cycles: 0,
        }
    }

    /// Serves at most one pending request. Returns whether one was served.
    pub fn poll(&mut self) -> bool {
        if !self.wire.doorbell() {
            return false;
        }
        let msg = self.wire.host_read(regs::MSG_TYPE, 4) as u32;
        match msg {
            MSG_VERSION => {
                self.wire
                    .host_write(regs::RESPONSE, 4, u64::from(self.version));
                self.wire.host_write(regs::STATUS, 4, 0);
            }
            MSG_ATTEST => {
                let mut nonce = [0u8; 16];
                for (i, b) in nonce.iter_mut().enumerate() {
                    *b = self.wire.host_read(regs::REQUEST + i as u64, 1) as u8;
                }
                let report = self.attestor.attest(&Challenge { nonce });
                self.auth_cycles += report.cycles;
                let payload = report
                    .measurement
                    .iter()
                    .chain(report.nonce.iter())
                    .chain(report.tag.iter());
                for (i, b) in payload.enumerate() {
                    self.wire
                        .host_write(regs::RESPONSE + i as u64, 1, u64::from(*b));
                }
                self.wire.host_write(regs::STATUS, 4, 0);
            }
            _ => {
                self.wire.host_write(regs::STATUS, 4, 1);
            }
        }
        // Clear the doorbell, signal completion.
        self.wire.host_write(regs::DOORBELL, 4, 0);
        self.wire.host_write(regs::COMPLETION, 4, 1);
        self.served += 1;
        true
    }

    /// The measurement this service attests (for verifier setup).
    #[must_use]
    pub fn measurement(&self) -> [u8; DIGEST_LEN] {
        self.attestor.measurement()
    }
}

/// Parses the response area back into an attestation report (host/verifier
/// side helper).
#[must_use]
pub fn read_report(wire: &ScmiWire) -> crate::attestation::AttestationReport {
    let mut measurement = [0u8; DIGEST_LEN];
    let mut nonce = [0u8; 16];
    let mut tag = [0u8; DIGEST_LEN];
    let base = regs::RESPONSE;
    for (i, b) in measurement.iter_mut().enumerate() {
        *b = wire.host_read(base + i as u64, 1) as u8;
    }
    for (i, b) in nonce.iter_mut().enumerate() {
        *b = wire.host_read(base + 32 + i as u64, 1) as u8;
    }
    for (i, b) in tag.iter_mut().enumerate() {
        *b = wire.host_read(base + 48 + i as u64, 1) as u8;
    }
    crate::attestation::AttestationReport {
        measurement,
        nonce,
        tag,
        cycles: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::verify_report;
    use crate::sha256::sha256;

    const KEY: &[u8] = b"wire-attest-key";
    const IMAGE: &[u8] = b"firmware image";

    #[test]
    fn version_over_the_wire() {
        let wire = ScmiWire::new();
        let mut svc = ScmiWireService::new(wire.clone(), KEY, IMAGE);
        wire.host_write(regs::MSG_TYPE, 4, u64::from(MSG_VERSION));
        wire.host_write(regs::DOORBELL, 4, 1);
        assert!(svc.poll());
        assert_eq!(wire.host_read(regs::COMPLETION, 4), 1);
        assert_eq!(wire.host_read(regs::STATUS, 4), 0);
        assert_eq!(wire.host_read(regs::RESPONSE, 4), 0x0001_0000);
    }

    #[test]
    fn attestation_over_the_wire_verifies() {
        let wire = ScmiWire::new();
        let mut svc = ScmiWireService::new(wire.clone(), KEY, IMAGE);
        let nonce = [0xabu8; 16];
        wire.host_write(regs::MSG_TYPE, 4, u64::from(MSG_ATTEST));
        for (i, b) in nonce.iter().enumerate() {
            wire.host_write(regs::REQUEST + i as u64, 1, u64::from(*b));
        }
        wire.host_write(regs::DOORBELL, 4, 1);
        assert!(svc.poll());
        let report = read_report(&wire);
        assert!(verify_report(
            &report,
            &Challenge { nonce },
            KEY,
            &sha256(IMAGE)
        ));
        assert!(svc.auth_cycles > 0);
    }

    #[test]
    fn unknown_message_sets_error_status() {
        let wire = ScmiWire::new();
        let mut svc = ScmiWireService::new(wire.clone(), KEY, IMAGE);
        wire.host_write(regs::MSG_TYPE, 4, 99);
        wire.host_write(regs::DOORBELL, 4, 1);
        assert!(svc.poll());
        assert_eq!(wire.host_read(regs::STATUS, 4), 1);
    }

    #[test]
    fn idle_poll_is_noop() {
        let wire = ScmiWire::new();
        let mut svc = ScmiWireService::new(wire, KEY, IMAGE);
        assert!(!svc.poll());
        assert_eq!(svc.served, 0);
    }
}
