//! SHA-256, the primitive behind OpenTitan's HMAC hardware block.
//!
//! Implemented from scratch (FIPS 180-4). The [`crate::hmac`] accelerator
//! model wraps it; TitanCFI uses it to authenticate shadow-stack pages
//! spilled from the RoT private scratchpad to SoC memory (paper §VI).

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes.
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Incremental SHA-256 state.
///
/// # Examples
///
/// ```
/// use opentitan_model::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(digest[0], 0xba);
/// assert_eq!(digest[31], 0xad);
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    length: u64,
    /// Number of 64-byte blocks compressed (drives the accelerator's
    /// cycle model).
    blocks: u64,
}

impl Default for Sha256 {
    fn default() -> Sha256 {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hash state.
    #[must_use]
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buffer: [0; BLOCK_LEN],
            buffered: 0,
            length: 0,
            blocks: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.length += data.len() as u64;
        let mut rest = data;
        if self.buffered > 0 {
            let take = rest.len().min(BLOCK_LEN - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while rest.len() >= BLOCK_LEN {
            let (block, tail) = rest.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Completes the hash, consuming the state.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.length * 8;
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length is absorbed manually to avoid recursing through update's
        // length accounting.
        let mut block = self.buffer;
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Number of compression-function invocations so far (accelerator
    /// timing: OpenTitan's HMAC core takes ~80 cycles per block).
    #[must_use]
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        self.blocks += 1;
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot convenience.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split {split}");
        }
    }

    #[test]
    fn block_counter_tracks_compressions() {
        let mut h = Sha256::new();
        h.update(&[0u8; 128]);
        assert_eq!(h.blocks(), 2);
        let _ = h.finalize();
    }
}
