//! The CFI Mailbox: the SCMI-style shared-register block between the CVA6
//! host domain and the OpenTitan RoT.
//!
//! Paper §IV-A: the mailbox holds general-purpose registers wide enough for
//! one 224-bit commit log, a **doorbell** register that interrupts the RoT
//! when the host's CFI Log Writer finishes a transfer, and a **completion**
//! register that — unlike a stock SCMI mailbox — is wired straight back to
//! the CVA6 commit stage rather than to the host interrupt controller. The
//! CFI check verdict is returned in data word 0.
//!
//! Both sides see the same state: the RoT maps it as a [`Device`] on the
//! Ibex bus; the host-side Log Writer uses the `host_*` methods (modelling
//! its AXI master port).

use ibex_model::Device;
use riscv_isa::MemWidth;
use std::sync::{Arc, Mutex};
use titancfi_obs::{Probe, Track};

/// Number of 32-bit data registers (256 bits ≥ one 224-bit commit log).
pub const DATA_WORDS: usize = 8;

/// Register map offsets (byte offsets from the mailbox base).
pub mod regs {
    /// First data word; words continue every 4 bytes.
    pub const DATA0: u64 = 0x00;
    /// Doorbell: host writes 1, RoT reads/clears.
    pub const DOORBELL: u64 = 0x20;
    /// Completion: RoT writes 1, host reads/clears.
    pub const COMPLETION: u64 = 0x24;
}

#[derive(Debug, Default)]
struct Shared {
    data: [u32; DATA_WORDS],
    doorbell: bool,
    completion: bool,
    /// Counters for the evaluation harness.
    doorbells_rung: u64,
    completions_signalled: u64,
}

/// The mailbox state, shared between the host-side writer and the RoT bus.
#[derive(Debug, Clone, Default)]
pub struct CfiMailbox {
    shared: Arc<Mutex<Shared>>,
}

impl CfiMailbox {
    /// A fresh mailbox with cleared registers.
    #[must_use]
    pub fn new() -> CfiMailbox {
        CfiMailbox::default()
    }

    /// The RoT-side bus device view (register this on the Ibex bus).
    #[must_use]
    pub fn device(&self) -> Box<dyn Device> {
        Box::new(MailboxDevice {
            shared: Arc::clone(&self.shared),
        })
    }

    // ---- host (CVA6 / Log Writer) side ----

    /// Host AXI write of one 32-bit data word.
    ///
    /// # Panics
    ///
    /// Panics if `index >= DATA_WORDS`.
    pub fn host_write_data(&self, index: usize, value: u32) {
        self.shared.lock().expect("mailbox lock").data[index] = value;
    }

    /// Host AXI read of one data word (used to fetch the verdict).
    ///
    /// # Panics
    ///
    /// Panics if `index >= DATA_WORDS`.
    #[must_use]
    pub fn host_read_data(&self, index: usize) -> u32 {
        self.shared.lock().expect("mailbox lock").data[index]
    }

    /// Host sets the doorbell, interrupting the RoT.
    pub fn host_ring_doorbell(&self) {
        let mut s = self.shared.lock().expect("mailbox lock");
        s.doorbell = true;
        s.doorbells_rung += 1;
    }

    /// Like [`CfiMailbox::host_ring_doorbell`], marking the ring on the
    /// mailbox timeline track: an instant plus an open `check-pending`
    /// span that [`CfiMailbox::host_completion_probed`] closes.
    pub fn host_ring_doorbell_probed(&self, cycle: u64, probe: &mut dyn Probe) {
        self.host_ring_doorbell();
        if probe.enabled() {
            probe.counter_add("mailbox.doorbells", 1);
            probe.instant(Track::Mailbox, "doorbell", cycle);
            probe.span_begin(Track::Mailbox, "check-pending", cycle);
        }
    }

    /// Host polls the completion flag.
    #[must_use]
    pub fn host_completion(&self) -> bool {
        self.shared.lock().expect("mailbox lock").completion
    }

    /// Like [`CfiMailbox::host_completion`], closing the `check-pending`
    /// span when completion is first observed.
    pub fn host_completion_probed(&self, cycle: u64, probe: &mut dyn Probe) -> bool {
        let completion = self.host_completion();
        if completion && probe.enabled() {
            probe.counter_add("mailbox.completions", 1);
            probe.instant(Track::Mailbox, "completion", cycle);
            probe.span_end(Track::Mailbox, cycle);
        }
        completion
    }

    /// Host acknowledges (clears) completion.
    pub fn host_clear_completion(&self) {
        self.shared.lock().expect("mailbox lock").completion = false;
    }

    // ---- observers ----

    /// Whether the doorbell is currently set (drives the RoT IRQ line).
    #[must_use]
    pub fn doorbell_pending(&self) -> bool {
        self.shared.lock().expect("mailbox lock").doorbell
    }

    /// Total doorbells rung (one per streamed commit log).
    #[must_use]
    pub fn doorbells_rung(&self) -> u64 {
        self.shared.lock().expect("mailbox lock").doorbells_rung
    }

    /// Total completions signalled by the RoT.
    #[must_use]
    pub fn completions_signalled(&self) -> u64 {
        self.shared
            .lock()
            .expect("mailbox lock")
            .completions_signalled
    }
}

struct MailboxDevice {
    shared: Arc<Mutex<Shared>>,
}

impl Device for MailboxDevice {
    fn read(&mut self, offset: u64, _width: MemWidth) -> u64 {
        let s = self.shared.lock().expect("mailbox lock");
        match offset {
            o if o < 4 * DATA_WORDS as u64 => u64::from(s.data[(o / 4) as usize]),
            regs::DOORBELL => u64::from(s.doorbell),
            regs::COMPLETION => u64::from(s.completion),
            _ => 0,
        }
    }

    fn write(&mut self, offset: u64, _width: MemWidth, value: u64) {
        let mut s = self.shared.lock().expect("mailbox lock");
        match offset {
            o if o < 4 * DATA_WORDS as u64 => s.data[(o / 4) as usize] = value as u32,
            regs::DOORBELL => {
                // RoT writes 0 to clear the pending doorbell.
                s.doorbell = value & 1 != 0;
            }
            regs::COMPLETION => {
                if value & 1 != 0 {
                    s.completion = true;
                    s.completions_signalled += 1;
                    // Completion implies the log was consumed: the hardware
                    // clears the doorbell so the firmware does not pay an
                    // extra SoC write for it.
                    s.doorbell = false;
                } else {
                    s.completion = false;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_to_rot_data_path() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        mb.host_write_data(0, 0xdead_beef);
        mb.host_write_data(6, 0x1234);
        assert_eq!(dev.read(0x00, MemWidth::W), 0xdead_beef);
        assert_eq!(dev.read(0x18, MemWidth::W), 0x1234);
    }

    #[test]
    fn doorbell_protocol() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        assert!(!mb.doorbell_pending());
        mb.host_ring_doorbell();
        assert!(mb.doorbell_pending());
        assert_eq!(dev.read(regs::DOORBELL, MemWidth::W), 1);
        // RoT clears it.
        dev.write(regs::DOORBELL, MemWidth::W, 0);
        assert!(!mb.doorbell_pending());
        assert_eq!(mb.doorbells_rung(), 1);
    }

    #[test]
    fn completion_protocol_with_verdict() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        // RoT writes the verdict into data0 and signals completion.
        dev.write(regs::DATA0, MemWidth::W, 1); // violation!
        dev.write(regs::COMPLETION, MemWidth::W, 1);
        assert!(mb.host_completion());
        assert_eq!(mb.host_read_data(0), 1);
        mb.host_clear_completion();
        assert!(!mb.host_completion());
        assert_eq!(mb.completions_signalled(), 1);
    }

    #[test]
    fn clones_share_state() {
        let mb = CfiMailbox::new();
        let mb2 = mb.clone();
        mb.host_ring_doorbell();
        assert!(mb2.doorbell_pending());
    }
}
