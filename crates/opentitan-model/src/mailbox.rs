//! The CFI Mailbox: the SCMI-style shared-register block between the CVA6
//! host domain and the OpenTitan RoT.
//!
//! Paper §IV-A: the mailbox holds general-purpose registers wide enough for
//! one 224-bit commit log, a **doorbell** register that interrupts the RoT
//! when the host's CFI Log Writer finishes a transfer, and a **completion**
//! register that — unlike a stock SCMI mailbox — is wired straight back to
//! the CVA6 commit stage rather than to the host interrupt controller. The
//! CFI check verdict is returned in data word 0.
//!
//! Both sides see the same state: the RoT maps it as a [`Device`] on the
//! Ibex bus; the host-side Log Writer uses the `host_*` methods (modelling
//! its AXI master port).

use ibex_model::Device;
use riscv_isa::MemWidth;
use std::sync::{Arc, Mutex};
use titancfi_obs::{Probe, Track};

/// Number of 32-bit data registers (256 bits ≥ one 224-bit commit log).
pub const DATA_WORDS: usize = 8;

/// Register map offsets (byte offsets from the mailbox base).
pub mod regs {
    /// First data word; words continue every 4 bytes.
    pub const DATA0: u64 = 0x00;
    /// Doorbell: host writes 1, RoT reads/clears.
    pub const DOORBELL: u64 = 0x20;
    /// Completion: RoT writes 1, host reads/clears.
    pub const COMPLETION: u64 = 0x24;
}

/// Byte offset one past the last data word.
const DATA_END: u64 = 4 * DATA_WORDS as u64;

#[derive(Debug, Default)]
struct Shared {
    data: [u32; DATA_WORDS],
    doorbell: bool,
    completion: bool,
    /// Counters for the evaluation harness.
    doorbells_rung: u64,
    completions_signalled: u64,
    /// When set, doorbell rings carry a sequence number and the hardware
    /// verifies the word-7 integrity word before accepting the ring.
    integrity: bool,
    /// Last sequence number accepted on a verified ring.
    last_seq: Option<u16>,
    /// Rings rejected because the integrity word did not match the data.
    integrity_rejects: u64,
    /// Verified rings that re-presented the last accepted sequence number
    /// (a retry of a log the RoT may already have consumed).
    seq_duplicates: u64,
    /// Verified rings that skipped ahead (a log was lost in transit).
    seq_gaps: u64,
    /// Host-side aborts (escalation tore down an in-flight transaction).
    aborts: u64,
}

/// The mailbox state, shared between the host-side writer and the RoT bus.
#[derive(Debug, Clone, Default)]
pub struct CfiMailbox {
    shared: Arc<Mutex<Shared>>,
}

impl CfiMailbox {
    /// A fresh mailbox with cleared registers.
    #[must_use]
    pub fn new() -> CfiMailbox {
        CfiMailbox::default()
    }

    /// The RoT-side bus device view (register this on the Ibex bus).
    #[must_use]
    pub fn device(&self) -> Box<dyn Device> {
        Box::new(MailboxDevice {
            shared: Arc::clone(&self.shared),
        })
    }

    // ---- host (CVA6 / Log Writer) side ----

    /// Host AXI write of one 32-bit data word.
    ///
    /// # Panics
    ///
    /// Panics if `index >= DATA_WORDS`.
    pub fn host_write_data(&self, index: usize, value: u32) {
        self.shared.lock().expect("mailbox lock").data[index] = value;
    }

    /// Host AXI read of one data word (used to fetch the verdict).
    ///
    /// # Panics
    ///
    /// Panics if `index >= DATA_WORDS`.
    #[must_use]
    pub fn host_read_data(&self, index: usize) -> u32 {
        self.shared.lock().expect("mailbox lock").data[index]
    }

    /// Host sets the doorbell, interrupting the RoT.
    pub fn host_ring_doorbell(&self) {
        let mut s = self.shared.lock().expect("mailbox lock");
        s.doorbell = true;
        s.doorbells_rung += 1;
    }

    // ---- transport integrity (spare word 7) ----

    /// Turns on ring-time integrity verification: the host's Log Writer
    /// stores [`CfiMailbox::integrity_word`] in spare data word 7 and rings
    /// via [`CfiMailbox::host_ring_doorbell_verified_probed`]; the mailbox
    /// hardware checks the word before asserting the RoT interrupt. Verdict
    /// timing is unchanged — the check rides on the ring transaction.
    pub fn enable_integrity(&self) {
        self.shared.lock().expect("mailbox lock").integrity = true;
    }

    /// Whether ring-time integrity verification is on.
    #[must_use]
    pub fn integrity_enabled(&self) -> bool {
        self.shared.lock().expect("mailbox lock").integrity
    }

    /// The word-7 encoding: sequence number in the high half, an XOR-fold
    /// checksum of the seven log words (mixed with the sequence number) in
    /// the low half. Any single-bit flip in words 0–6 or in word 7 itself
    /// changes exactly one side of the comparison, so all single-bit upsets
    /// are detected.
    #[must_use]
    pub fn integrity_word(seq: u16, words: &[u32; DATA_WORDS - 1]) -> u32 {
        (u32::from(seq) << 16) | u32::from(Self::checksum(words, seq))
    }

    fn checksum(words: &[u32; DATA_WORDS - 1], seq: u16) -> u16 {
        let mut acc = u32::from(seq).wrapping_mul(0x9e37);
        for w in words {
            acc ^= *w;
        }
        ((acc >> 16) ^ (acc & 0xffff)) as u16
    }

    /// Rings the doorbell after verifying data integrity (when enabled).
    ///
    /// Returns `false` without ringing if the stored word 7 does not match
    /// the presented `seq` and the current data words — the caller must
    /// rewrite the log and retry. Duplicate and out-of-order sequence
    /// numbers are accepted (retries are legitimate) but counted so the
    /// harness can flag lost or replayed logs. With integrity disabled this
    /// is exactly [`CfiMailbox::host_ring_doorbell_probed`].
    pub fn host_ring_doorbell_verified_probed(
        &self,
        seq: u16,
        cycle: u64,
        probe: &mut dyn Probe,
    ) -> bool {
        {
            let mut s = self.shared.lock().expect("mailbox lock");
            if s.integrity {
                let stored = s.data[DATA_WORDS - 1];
                let payload: [u32; DATA_WORDS - 1] = s.data[..DATA_WORDS - 1]
                    .try_into()
                    .expect("seven payload words");
                if stored != Self::integrity_word(seq, &payload) {
                    s.integrity_rejects += 1;
                    return false;
                }
                match s.last_seq {
                    Some(last) if last == seq => s.seq_duplicates += 1,
                    Some(last) if last.wrapping_add(1) != seq => s.seq_gaps += 1,
                    _ => {}
                }
                s.last_seq = Some(seq);
            }
            s.doorbell = true;
            s.doorbells_rung += 1;
        }
        if probe.enabled() {
            probe.counter_add("mailbox.doorbells", 1);
            probe.instant(Track::Mailbox, "doorbell", cycle);
            probe.span_begin(Track::Mailbox, "check-pending", cycle);
        }
        true
    }

    /// Host tears down an in-flight transaction: clears the doorbell and
    /// any completion so a wedged or retried exchange cannot leave the
    /// interface stuck. Used by the Log Writer's escalation path.
    pub fn host_abort(&self) {
        let mut s = self.shared.lock().expect("mailbox lock");
        s.doorbell = false;
        s.completion = false;
        s.aborts += 1;
    }

    /// Like [`CfiMailbox::host_ring_doorbell`], marking the ring on the
    /// mailbox timeline track: an instant plus an open `check-pending`
    /// span that [`CfiMailbox::host_completion_probed`] closes.
    pub fn host_ring_doorbell_probed(&self, cycle: u64, probe: &mut dyn Probe) {
        self.host_ring_doorbell();
        if probe.enabled() {
            probe.counter_add("mailbox.doorbells", 1);
            probe.instant(Track::Mailbox, "doorbell", cycle);
            probe.span_begin(Track::Mailbox, "check-pending", cycle);
        }
    }

    /// Host polls the completion flag.
    #[must_use]
    pub fn host_completion(&self) -> bool {
        self.shared.lock().expect("mailbox lock").completion
    }

    /// Like [`CfiMailbox::host_completion`], closing the `check-pending`
    /// span when completion is first observed.
    pub fn host_completion_probed(&self, cycle: u64, probe: &mut dyn Probe) -> bool {
        let completion = self.host_completion();
        if completion && probe.enabled() {
            probe.counter_add("mailbox.completions", 1);
            probe.instant(Track::Mailbox, "completion", cycle);
            probe.span_end(Track::Mailbox, cycle);
        }
        completion
    }

    /// Host acknowledges (clears) completion.
    pub fn host_clear_completion(&self) {
        self.shared.lock().expect("mailbox lock").completion = false;
    }

    // ---- observers ----

    /// Whether the doorbell is currently set (drives the RoT IRQ line).
    #[must_use]
    pub fn doorbell_pending(&self) -> bool {
        self.shared.lock().expect("mailbox lock").doorbell
    }

    /// Total doorbells rung (one per streamed commit log).
    #[must_use]
    pub fn doorbells_rung(&self) -> u64 {
        self.shared.lock().expect("mailbox lock").doorbells_rung
    }

    /// Total completions signalled by the RoT.
    #[must_use]
    pub fn completions_signalled(&self) -> u64 {
        self.shared
            .lock()
            .expect("mailbox lock")
            .completions_signalled
    }

    /// Rings rejected by the integrity check.
    #[must_use]
    pub fn integrity_rejects(&self) -> u64 {
        self.shared.lock().expect("mailbox lock").integrity_rejects
    }

    /// Verified rings that re-presented the previous sequence number.
    #[must_use]
    pub fn seq_duplicates(&self) -> u64 {
        self.shared.lock().expect("mailbox lock").seq_duplicates
    }

    /// Verified rings whose sequence number skipped ahead.
    #[must_use]
    pub fn seq_gaps(&self) -> u64 {
        self.shared.lock().expect("mailbox lock").seq_gaps
    }

    /// Host-side transaction aborts.
    #[must_use]
    pub fn aborts(&self) -> u64 {
        self.shared.lock().expect("mailbox lock").aborts
    }
}

struct MailboxDevice {
    shared: Arc<Mutex<Shared>>,
}

impl MailboxDevice {
    /// Byte-wise register-file read. The flag bit lives in the low byte of
    /// its register; the other bytes read as zero (reserved).
    fn byte_at(s: &Shared, addr: u64) -> u8 {
        match addr {
            o if o < DATA_END => (s.data[(o / 4) as usize] >> (8 * (o % 4))) as u8,
            regs::DOORBELL => u8::from(s.doorbell),
            regs::COMPLETION => u8::from(s.completion),
            _ => 0,
        }
    }
}

impl Device for MailboxDevice {
    fn read(&mut self, offset: u64, width: MemWidth) -> u64 {
        let s = self.shared.lock().expect("mailbox lock");
        let mut value = 0u64;
        for i in 0..width.bytes() {
            value |= u64::from(Self::byte_at(&s, offset + i)) << (8 * i);
        }
        value
    }

    fn write(&mut self, offset: u64, width: MemWidth, value: u64) {
        let mut s = self.shared.lock().expect("mailbox lock");
        for i in 0..width.bytes() {
            let addr = offset + i;
            let byte = (value >> (8 * i)) as u8;
            match addr {
                o if o < DATA_END => {
                    // Sub-word stores merge into the 32-bit data word.
                    let word = (o / 4) as usize;
                    let shift = 8 * (o % 4);
                    s.data[word] = (s.data[word] & !(0xff << shift)) | (u32::from(byte) << shift);
                }
                regs::DOORBELL => {
                    if byte & 1 != 0 {
                        // RoT-side ring (self-notification) counts like a
                        // host ring so `doorbells_rung` stays in sync with
                        // every doorbell edge the firmware can observe.
                        if !s.doorbell {
                            s.doorbells_rung += 1;
                        }
                        s.doorbell = true;
                    } else {
                        // RoT writes 0 to clear the pending doorbell.
                        s.doorbell = false;
                    }
                }
                regs::COMPLETION => {
                    if byte & 1 != 0 {
                        s.completion = true;
                        s.completions_signalled += 1;
                        // Completion implies the log was consumed: the
                        // hardware clears the doorbell so the firmware does
                        // not pay an extra SoC write for it.
                        s.doorbell = false;
                    } else {
                        s.completion = false;
                    }
                }
                // Reserved bytes (including the upper bytes of the flag
                // registers) ignore writes.
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_to_rot_data_path() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        mb.host_write_data(0, 0xdead_beef);
        mb.host_write_data(6, 0x1234);
        assert_eq!(dev.read(0x00, MemWidth::W), 0xdead_beef);
        assert_eq!(dev.read(0x18, MemWidth::W), 0x1234);
    }

    #[test]
    fn doorbell_protocol() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        assert!(!mb.doorbell_pending());
        mb.host_ring_doorbell();
        assert!(mb.doorbell_pending());
        assert_eq!(dev.read(regs::DOORBELL, MemWidth::W), 1);
        // RoT clears it.
        dev.write(regs::DOORBELL, MemWidth::W, 0);
        assert!(!mb.doorbell_pending());
        assert_eq!(mb.doorbells_rung(), 1);
    }

    #[test]
    fn completion_protocol_with_verdict() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        // RoT writes the verdict into data0 and signals completion.
        dev.write(regs::DATA0, MemWidth::W, 1); // violation!
        dev.write(regs::COMPLETION, MemWidth::W, 1);
        assert!(mb.host_completion());
        assert_eq!(mb.host_read_data(0), 1);
        mb.host_clear_completion();
        assert!(!mb.host_completion());
        assert_eq!(mb.completions_signalled(), 1);
    }

    #[test]
    fn clones_share_state() {
        let mb = CfiMailbox::new();
        let mb2 = mb.clone();
        mb.host_ring_doorbell();
        assert!(mb2.doorbell_pending());
    }

    #[test]
    fn sub_word_store_merges_into_data_word() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        mb.host_write_data(0, 0xaabb_ccdd);
        dev.write(0x01, MemWidth::B, 0xee);
        assert_eq!(mb.host_read_data(0), 0xaabb_eedd);
        dev.write(0x02, MemWidth::H, 0x1122);
        assert_eq!(mb.host_read_data(0), 0x1122_eedd);
    }

    #[test]
    fn sub_word_loads_extract_bytes() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        mb.host_write_data(1, 0x8899_aabb);
        assert_eq!(dev.read(0x04, MemWidth::B), 0xbb);
        assert_eq!(dev.read(0x05, MemWidth::B), 0xaa);
        assert_eq!(dev.read(0x06, MemWidth::H), 0x8899);
    }

    #[test]
    fn double_width_access_spans_two_words() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        dev.write(0x08, MemWidth::D, 0x1111_2222_3333_4444);
        assert_eq!(mb.host_read_data(2), 0x3333_4444);
        assert_eq!(mb.host_read_data(3), 0x1111_2222);
        assert_eq!(dev.read(0x08, MemWidth::D), 0x1111_2222_3333_4444);
    }

    #[test]
    fn wide_flag_write_does_not_leak_into_neighbours() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        // A word-wide completion write must only consume the flag bit; the
        // reserved upper bytes are ignored, not treated as extra registers.
        dev.write(regs::COMPLETION, MemWidth::W, 0xffff_ff01);
        assert!(mb.host_completion());
        assert_eq!(dev.read(regs::COMPLETION, MemWidth::W), 1);
    }

    #[test]
    fn device_side_doorbell_set_counts() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        dev.write(regs::DOORBELL, MemWidth::W, 1);
        assert!(mb.doorbell_pending());
        assert_eq!(mb.doorbells_rung(), 1);
        // Re-asserting an already-pending doorbell is not a new ring.
        dev.write(regs::DOORBELL, MemWidth::W, 1);
        assert_eq!(mb.doorbells_rung(), 1);
        dev.write(regs::DOORBELL, MemWidth::W, 0);
        assert!(!mb.doorbell_pending());
        assert_eq!(mb.doorbells_rung(), 1);
    }

    fn payload() -> [u32; DATA_WORDS - 1] {
        [0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77]
    }

    fn write_log(mb: &CfiMailbox, seq: u16) {
        for (i, w) in payload().iter().enumerate() {
            mb.host_write_data(i, *w);
        }
        mb.host_write_data(DATA_WORDS - 1, CfiMailbox::integrity_word(seq, &payload()));
    }

    #[test]
    fn verified_ring_accepts_clean_log() {
        let mb = CfiMailbox::new();
        mb.enable_integrity();
        write_log(&mb, 1);
        let mut probe = titancfi_obs::NoProbe;
        assert!(mb.host_ring_doorbell_verified_probed(1, 0, &mut probe));
        assert!(mb.doorbell_pending());
        assert_eq!(mb.integrity_rejects(), 0);
        assert_eq!(mb.seq_duplicates(), 0);
        assert_eq!(mb.seq_gaps(), 0);
    }

    #[test]
    fn verified_ring_rejects_any_single_bit_flip() {
        for word in 0..DATA_WORDS {
            for bit in [0u32, 7, 15, 16, 31] {
                let mb = CfiMailbox::new();
                mb.enable_integrity();
                write_log(&mb, 1);
                mb.host_write_data(word, mb.host_read_data(word) ^ (1 << bit));
                let mut probe = titancfi_obs::NoProbe;
                assert!(
                    !mb.host_ring_doorbell_verified_probed(1, 0, &mut probe),
                    "flip in word {word} bit {bit} must be rejected"
                );
                assert!(!mb.doorbell_pending());
                assert_eq!(mb.integrity_rejects(), 1);
            }
        }
    }

    #[test]
    fn verified_ring_tracks_duplicates_and_gaps() {
        let mb = CfiMailbox::new();
        mb.enable_integrity();
        let mut probe = titancfi_obs::NoProbe;
        write_log(&mb, 1);
        assert!(mb.host_ring_doorbell_verified_probed(1, 0, &mut probe));
        // Retry of the same sequence number: accepted, counted.
        assert!(mb.host_ring_doorbell_verified_probed(1, 10, &mut probe));
        assert_eq!(mb.seq_duplicates(), 1);
        // Sequence 3 after 1: a log was lost.
        write_log(&mb, 3);
        assert!(mb.host_ring_doorbell_verified_probed(3, 20, &mut probe));
        assert_eq!(mb.seq_gaps(), 1);
    }

    #[test]
    fn unverified_ring_when_integrity_disabled() {
        let mb = CfiMailbox::new();
        let mut probe = titancfi_obs::NoProbe;
        // Garbage in word 7 and a mismatched seq must still be accepted.
        mb.host_write_data(DATA_WORDS - 1, 0xdead_beef);
        assert!(mb.host_ring_doorbell_verified_probed(0x55, 0, &mut probe));
        assert!(mb.doorbell_pending());
    }

    #[test]
    fn abort_tears_down_inflight_transaction() {
        let mb = CfiMailbox::new();
        let mut dev = mb.device();
        mb.host_ring_doorbell();
        dev.write(regs::COMPLETION, MemWidth::W, 1);
        mb.host_abort();
        assert!(!mb.doorbell_pending());
        assert!(!mb.host_completion());
        assert_eq!(mb.aborts(), 1);
    }
}
