//! A model of the OpenTitan silicon root of trust.
//!
//! TitanCFI's central idea is to run CFI enforcement *inside the RoT that is
//! already on the SoC* (paper §I). This crate models the pieces of OpenTitan
//! the paper relies on:
//!
//! * the Ibex security microcontroller (via `ibex-model`) behind the RoT
//!   memory map ([`rot::map`]),
//! * the private 128 KB scratchpad (tamper-proof shadow-stack storage),
//! * the [`hmac`] accelerator (HMAC-SHA-256, built on a from-scratch
//!   [`sha256`]) used to authenticate CFI metadata spilled to SoC memory,
//! * the scrambled, ECC-protected embedded [`flash`] (key storage),
//! * the SCMI-style CFI [`mailbox`] and the [`plic`] interrupt path that
//!   deliver commit logs from the host domain.
//!
//! [`OpenTitan::new`] composes all of it around an assembled firmware image;
//! [`LatencyProfile`] selects between the paper's baseline and "Optimized"
//! interconnects.

pub mod attestation;
pub mod flash;
pub mod hmac;
pub mod mailbox;
pub mod plic;
pub mod rot;
pub mod scmi;
pub mod scmi_wire;
pub mod secure_boot;
pub mod sha256;

pub use attestation::{verify_report, AttestationReport, Attestor, Challenge};
pub use flash::{EccRead, Flash, Scrambler};
pub use hmac::HmacEngine;
pub use mailbox::CfiMailbox;
pub use plic::Plic;
pub use rot::{LatencyProfile, OpenTitan};
pub use scmi::{ScmiMailbox, ScmiRequest, ScmiResponse, ScmiService};
pub use scmi_wire::{ScmiWire, ScmiWireService};
pub use secure_boot::{boot, provision, BootError, BootReport};
