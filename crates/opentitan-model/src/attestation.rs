//! Remote attestation: signed measurement reports over the boot image.
//!
//! The reference platform uses OpenTitan for "secure boot and remote
//! attestation" (paper §I) — TitanCFI then reuses the same RoT for CFI.
//! This module completes that picture: the RoT measures the firmware image
//! it booted (SHA-256), and answers challenges with an HMAC-signed report
//! binding the measurement to the verifier's nonce, so reports can neither
//! be forged (no key) nor replayed (fresh nonce).

use crate::hmac::{HmacEngine, Tag};
use crate::sha256::{sha256, DIGEST_LEN};

/// A verifier's challenge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Challenge {
    /// Verifier-chosen freshness nonce.
    pub nonce: [u8; 16],
}

/// The RoT's signed response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttestationReport {
    /// SHA-256 measurement of the attested image.
    pub measurement: [u8; DIGEST_LEN],
    /// Echo of the challenge nonce.
    pub nonce: [u8; 16],
    /// HMAC over `measurement || nonce` with the attestation key.
    pub tag: Tag,
    /// Accelerator cycles spent producing the report.
    pub cycles: u64,
}

/// The attestation service held by the RoT.
#[derive(Debug, Clone)]
pub struct Attestor {
    engine: HmacEngine,
    measurement: [u8; DIGEST_LEN],
}

impl Attestor {
    /// Creates the service for a booted `image`, keyed with the device's
    /// attestation key.
    #[must_use]
    pub fn new(attestation_key: &[u8], image: &[u8]) -> Attestor {
        Attestor {
            engine: HmacEngine::new(attestation_key),
            measurement: sha256(image),
        }
    }

    /// The stored measurement (what a local verifier reads back).
    #[must_use]
    pub fn measurement(&self) -> [u8; DIGEST_LEN] {
        self.measurement
    }

    /// Answers a challenge with a signed report.
    #[must_use]
    pub fn attest(&self, challenge: &Challenge) -> AttestationReport {
        let mut msg = [0u8; DIGEST_LEN + 16];
        msg[..DIGEST_LEN].copy_from_slice(&self.measurement);
        msg[DIGEST_LEN..].copy_from_slice(&challenge.nonce);
        let (tag, cycles) = self.engine.mac(&msg);
        AttestationReport {
            measurement: self.measurement,
            nonce: challenge.nonce,
            tag,
            cycles,
        }
    }
}

/// Verifier-side check: the report must carry the expected measurement,
/// echo the challenge nonce, and verify under the shared key.
#[must_use]
pub fn verify_report(
    report: &AttestationReport,
    challenge: &Challenge,
    attestation_key: &[u8],
    expected_measurement: &[u8; DIGEST_LEN],
) -> bool {
    if report.nonce != challenge.nonce || &report.measurement != expected_measurement {
        return false;
    }
    let mut msg = [0u8; DIGEST_LEN + 16];
    msg[..DIGEST_LEN].copy_from_slice(&report.measurement);
    msg[DIGEST_LEN..].copy_from_slice(&report.nonce);
    HmacEngine::new(attestation_key).verify(&msg, &report.tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"attestation-key";

    fn setup() -> (Attestor, [u8; DIGEST_LEN]) {
        let image = b"the booted cfi firmware image";
        let attestor = Attestor::new(KEY, image);
        (attestor, sha256(image))
    }

    #[test]
    fn honest_report_verifies() {
        let (attestor, expected) = setup();
        let ch = Challenge { nonce: [7; 16] };
        let report = attestor.attest(&ch);
        assert!(verify_report(&report, &ch, KEY, &expected));
        assert!(report.cycles > 0);
    }

    #[test]
    fn replayed_report_rejected() {
        let (attestor, expected) = setup();
        let old = Challenge { nonce: [1; 16] };
        let report = attestor.attest(&old);
        // A fresh challenge must not accept the old report.
        let fresh = Challenge { nonce: [2; 16] };
        assert!(!verify_report(&report, &fresh, KEY, &expected));
    }

    #[test]
    fn forged_tag_rejected() {
        let (attestor, expected) = setup();
        let ch = Challenge { nonce: [3; 16] };
        let mut report = attestor.attest(&ch);
        report.tag[0] ^= 1;
        assert!(!verify_report(&report, &ch, KEY, &expected));
    }

    #[test]
    fn wrong_measurement_rejected() {
        let (attestor, _) = setup();
        let ch = Challenge { nonce: [4; 16] };
        let report = attestor.attest(&ch);
        let other = sha256(b"some other image");
        assert!(!verify_report(&report, &ch, KEY, &other));
    }

    #[test]
    fn wrong_key_rejected() {
        let (attestor, expected) = setup();
        let ch = Challenge { nonce: [5; 16] };
        let report = attestor.attest(&ch);
        assert!(!verify_report(&report, &ch, b"other-key", &expected));
    }

    #[test]
    fn attestation_binds_to_secure_boot() {
        // End-to-end with the flash path: provision, boot, measure, attest.
        use crate::flash::Flash;
        use crate::secure_boot::{boot, provision};
        let image: Vec<u8> = (0..500u16).map(|i| (i % 251) as u8).collect();
        let boot_engine = HmacEngine::new(b"boot-key");
        let mut flash = Flash::new(2048, 9);
        provision(&mut flash, &boot_engine, &image);
        let (booted, _) = boot(&flash, &boot_engine).expect("boots");
        let attestor = Attestor::new(KEY, &booted);
        let ch = Challenge { nonce: [9; 16] };
        let report = attestor.attest(&ch);
        assert!(verify_report(&report, &ch, KEY, &sha256(&image)));
    }
}
