//! The OpenTitan HMAC accelerator model.
//!
//! OpenTitan exposes a hardware HMAC-SHA-256 engine. TitanCFI uses it to
//! authenticate CFI metadata (shadow-stack pages) before spilling them to
//! untrusted SoC memory, and to verify them on restore (paper §VI, inspired
//! by Zipper Stack). [`HmacEngine`] provides the functional HMAC plus a
//! cycle estimate matching the hardware's ~80-cycles-per-block throughput,
//! so policy firmware can account for authentication latency.

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Cycles the hardware takes to compress one 64-byte block.
pub const CYCLES_PER_BLOCK: u64 = 80;
/// Fixed setup cycles per HMAC operation (key schedule + padding).
pub const CYCLES_SETUP: u64 = 24;

/// A message authentication tag.
pub type Tag = [u8; DIGEST_LEN];

/// The HMAC-SHA-256 engine with a loaded key.
///
/// # Examples
///
/// ```
/// use opentitan_model::hmac::HmacEngine;
/// let engine = HmacEngine::new(b"device-unique-key");
/// let (tag, cycles) = engine.mac(b"shadow stack page");
/// assert!(engine.verify(b"shadow stack page", &tag));
/// assert!(!engine.verify(b"tampered page", &tag));
/// assert!(cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct HmacEngine {
    ipad: [u8; BLOCK_LEN],
    opad: [u8; BLOCK_LEN],
}

impl HmacEngine {
    /// Loads `key` (any length; longer than one block is pre-hashed, as per
    /// RFC 2104).
    #[must_use]
    pub fn new(key: &[u8]) -> HmacEngine {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        HmacEngine { ipad, opad }
    }

    /// Computes the tag over `message`, returning `(tag, cycles)` where
    /// `cycles` models the accelerator latency.
    #[must_use]
    pub fn mac(&self, message: &[u8]) -> (Tag, u64) {
        let mut inner = Sha256::new();
        inner.update(&self.ipad);
        inner.update(message);
        let inner_digest = inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad);
        outer.update(&inner_digest);
        let tag = outer.finalize();
        // Exact block counts including padding: a SHA-256 message of n bytes
        // compresses ceil((n + 9) / 64) blocks.
        let blocks = |n: u64| (n + 9).div_ceil(64);
        let total_blocks = blocks(BLOCK_LEN as u64 + message.len() as u64)
            + blocks(BLOCK_LEN as u64 + DIGEST_LEN as u64);
        (tag, CYCLES_SETUP + total_blocks * CYCLES_PER_BLOCK)
    }

    /// Verifies `tag` over `message` in constant-time-style comparison.
    #[must_use]
    pub fn verify(&self, message: &[u8], tag: &Tag) -> bool {
        let (computed, _) = self.mac(message);
        let mut diff = 0u8;
        for (a, b) in computed.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(t: &[u8]) -> String {
        t.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        // Key = 0x0b * 20, data = "Hi There"
        let engine = HmacEngine::new(&[0x0b; 20]);
        let (tag, _) = engine.mac(b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let engine = HmacEngine::new(b"Jefe");
        let (tag, _) = engine.mac(b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // 131-byte key of 0xaa: exercises the key pre-hash path.
        let engine = HmacEngine::new(&[0xaa; 131]);
        let (tag, _) = engine.mac(b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_rejects_tampering() {
        let engine = HmacEngine::new(b"k");
        let (mut tag, _) = engine.mac(b"message");
        assert!(engine.verify(b"message", &tag));
        tag[7] ^= 1;
        assert!(!engine.verify(b"message", &tag));
    }

    #[test]
    fn cycles_scale_with_message_length() {
        let engine = HmacEngine::new(b"k");
        let (_, short) = engine.mac(&[0u8; 16]);
        let (_, long) = engine.mac(&[0u8; 4096]);
        assert!(long > short);
        assert!(long >= 4096 / 64 * CYCLES_PER_BLOCK);
    }
}
