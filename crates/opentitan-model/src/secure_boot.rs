//! Secure boot: authenticated firmware loading from the embedded flash.
//!
//! TitanCFI's premise is that the RoT "is already present on the platform
//! to enable Secure Boot and Remote Attestation" (paper §I) — the CFI
//! firmware itself must therefore arrive through the secure-boot path. This
//! module implements it end-to-end on the modelled hardware: the firmware
//! image is provisioned into the scrambled, ECC-protected [`Flash`] along
//! with an HMAC tag; at boot, the ROM reads it back through the ECC
//! decoder, verifies the tag with the [`HmacEngine`], and only then
//! releases the image for execution. Bit-flips are corrected or detected
//! by the SECDED code; any tampering that survives ECC is caught by the
//! MAC.

use crate::flash::{EccRead, Flash};
use crate::hmac::{HmacEngine, Tag};
use std::fmt;

/// Flash word index where the boot image header starts.
pub const IMAGE_BASE_WORD: u64 = 16;

/// Why a boot attempt was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootError {
    /// A flash word was uncorrectable (≥ 2-bit fault or gross tampering).
    FlashCorruption {
        /// The failing flash word index.
        word: u64,
    },
    /// The image failed MAC verification.
    AuthFailure,
    /// The header length field is implausible.
    BadHeader,
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::FlashCorruption { word } => {
                write!(f, "uncorrectable flash corruption at word {word}")
            }
            BootError::AuthFailure => f.write_str("firmware image failed authentication"),
            BootError::BadHeader => f.write_str("invalid boot image header"),
        }
    }
}

impl std::error::Error for BootError {}

/// Provisions `image` into `flash` with an authentication tag.
///
/// Layout starting at [`IMAGE_BASE_WORD`]: one length word (bytes), the
/// image padded to 8-byte words, then the 32-byte tag (4 words).
///
/// # Panics
///
/// Panics if the image does not fit the flash.
pub fn provision(flash: &mut Flash, engine: &HmacEngine, image: &[u8]) {
    let words = image.len().div_ceil(8) as u64;
    assert!(
        IMAGE_BASE_WORD + 1 + words + 4 <= flash.len() as u64,
        "image too large for flash"
    );
    flash.write(IMAGE_BASE_WORD, image.len() as u64);
    for i in 0..words {
        let mut chunk = [0u8; 8];
        let start = (i * 8) as usize;
        let end = (start + 8).min(image.len());
        chunk[..end - start].copy_from_slice(&image[start..end]);
        flash.write(IMAGE_BASE_WORD + 1 + i, u64::from_le_bytes(chunk));
    }
    let (tag, _) = engine.mac(image);
    for (i, quad) in tag.chunks_exact(8).enumerate() {
        flash.write(
            IMAGE_BASE_WORD + 1 + words + i as u64,
            u64::from_le_bytes(quad.try_into().expect("8-byte chunk")),
        );
    }
}

fn read_word(flash: &Flash, word: u64) -> Result<u64, BootError> {
    match flash.read(word) {
        EccRead::Clean(v) | EccRead::Corrected(v) => Ok(v),
        EccRead::Uncorrectable => Err(BootError::FlashCorruption { word }),
    }
}

/// Boot statistics (what the ROM log would report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BootReport {
    /// Flash words read.
    pub words_read: u64,
    /// Cycles spent in the HMAC accelerator verifying the image.
    pub auth_cycles: u64,
}

/// Reads the image back through ECC and verifies its tag.
///
/// # Errors
///
/// Returns [`BootError`] on uncorrectable flash faults, a bad header, or
/// authentication failure.
pub fn boot(flash: &Flash, engine: &HmacEngine) -> Result<(Vec<u8>, BootReport), BootError> {
    let len = read_word(flash, IMAGE_BASE_WORD)?;
    let words = len.div_ceil(8);
    if len == 0 || IMAGE_BASE_WORD + 1 + words + 4 > flash.len() as u64 {
        return Err(BootError::BadHeader);
    }
    let mut image = Vec::with_capacity(len as usize);
    for i in 0..words {
        let v = read_word(flash, IMAGE_BASE_WORD + 1 + i)?;
        image.extend(v.to_le_bytes());
    }
    image.truncate(len as usize);
    let mut tag: Tag = [0; 32];
    for i in 0..4u64 {
        let v = read_word(flash, IMAGE_BASE_WORD + 1 + words + i)?;
        tag[(i * 8) as usize..(i * 8 + 8) as usize].copy_from_slice(&v.to_le_bytes());
    }
    let (_, auth_cycles) = engine.mac(&image);
    if !engine.verify(&image, &tag) {
        return Err(BootError::AuthFailure);
    }
    Ok((
        image,
        BootReport {
            words_read: 1 + words + 4,
            auth_cycles,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Flash, HmacEngine, Vec<u8>) {
        let flash = Flash::new(4096, 0xfeed_beef);
        let engine = HmacEngine::new(b"boot-key");
        let image: Vec<u8> = (0..1000u32).map(|i| (i * 31 + 7) as u8).collect();
        (flash, engine, image)
    }

    #[test]
    fn provision_then_boot_roundtrip() {
        let (mut flash, engine, image) = setup();
        provision(&mut flash, &engine, &image);
        let (booted, report) = boot(&flash, &engine).expect("boots");
        assert_eq!(booted, image);
        assert!(report.words_read > image.len() as u64 / 8);
        assert!(report.auth_cycles > 0);
    }

    #[test]
    fn single_bit_flash_fault_corrected_transparently() {
        let (mut flash, engine, image) = setup();
        provision(&mut flash, &engine, &image);
        flash.flip_bit(IMAGE_BASE_WORD + 3, 17);
        let (booted, _) = boot(&flash, &engine).expect("ECC corrects one flip");
        assert_eq!(booted, image);
    }

    #[test]
    fn double_bit_fault_detected() {
        let (mut flash, engine, image) = setup();
        provision(&mut flash, &engine, &image);
        flash.flip_bit(IMAGE_BASE_WORD + 3, 17);
        flash.flip_bit(IMAGE_BASE_WORD + 3, 44);
        assert_eq!(
            boot(&flash, &engine),
            Err(BootError::FlashCorruption {
                word: IMAGE_BASE_WORD + 3
            })
        );
    }

    #[test]
    fn tampered_image_fails_auth() {
        let (mut flash, engine, image) = setup();
        provision(&mut flash, &engine, &image);
        // Overwrite an image word wholesale (attacker re-programs flash but
        // cannot forge the MAC without the key).
        flash.write(IMAGE_BASE_WORD + 5, 0xdead_beef_dead_beef);
        assert_eq!(boot(&flash, &engine), Err(BootError::AuthFailure));
    }

    #[test]
    fn wrong_key_fails_auth() {
        let (mut flash, engine, image) = setup();
        provision(&mut flash, &engine, &image);
        let other = HmacEngine::new(b"different-key");
        assert_eq!(boot(&flash, &other), Err(BootError::AuthFailure));
    }

    #[test]
    fn empty_flash_is_bad_header() {
        let flash = Flash::new(256, 1);
        let engine = HmacEngine::new(b"k");
        assert_eq!(boot(&flash, &engine), Err(BootError::BadHeader));
    }

    #[test]
    fn boot_the_real_cfi_firmware_image() {
        // End-to-end: the actual assembled CFI firmware goes through
        // provisioning and authenticated boot.
        let fw = crate::rot::map::SRAM_BASE;
        let program = riscv_asm::assemble("_start: wfi\nj _start\n", riscv_isa::Xlen::Rv32, fw)
            .expect("assembles");
        let (mut flash, engine, _) = setup();
        provision(&mut flash, &engine, &program.bytes);
        let (booted, _) = boot(&flash, &engine).expect("boots");
        assert_eq!(booted, program.bytes);
    }
}
