//! The assembled OpenTitan root of trust.
//!
//! [`OpenTitan`] wires the Ibex core model to the RoT memory map: the
//! private 128 KB scratchpad SRAM, the (SoC-side) CFI mailbox and PLIC, and
//! a window onto SoC main memory. Two [`LatencyProfile`]s reproduce the
//! paper's interconnect variants: the **baseline** OpenTitan fabric
//! (≈5-cycle scratchpad, ≈12-cycle SoC accesses) and the **optimized**
//! low-latency interconnect of Table I's last section (1-cycle scratchpad,
//! ≈8-cycle SoC).

use crate::flash::Flash;
use crate::hmac::HmacEngine;
use crate::mailbox::CfiMailbox;
use crate::plic::{Plic, SRC_CFI_MAILBOX};
use ibex_model::{IbexCore, IbexTiming, RegionKind, RegionLatency, SystemBus};
use riscv_asm::Program;
use riscv_isa::csr;

/// The RoT memory map (Ibex physical addresses).
pub mod map {
    /// Private scratchpad SRAM base (code + data + shadow stack).
    pub const SRAM_BASE: u64 = 0x1000_0000;
    /// Scratchpad size: 128 KB, as in OpenTitan.
    pub const SRAM_SIZE: u64 = 128 * 1024;
    /// PLIC base.
    pub const PLIC_BASE: u64 = 0x4800_0000;
    /// PLIC register window size.
    pub const PLIC_SIZE: u64 = 0x100;
    /// CFI mailbox base (reached through the TileLink-to-AXI bridge).
    pub const MAILBOX_BASE: u64 = 0xc000_0000;
    /// CFI mailbox register window size.
    pub const MAILBOX_SIZE: u64 = 0x100;
    /// Window onto SoC main memory (spill region for CFI metadata).
    pub const SOC_RAM_BASE: u64 = 0x8000_0000;
    /// Spill window size.
    pub const SOC_RAM_SIZE: u64 = 1024 * 1024;
}

/// Bus latencies for the two interconnect variants evaluated in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyProfile {
    /// RoT-private scratchpad access latency.
    pub rot: RegionLatency,
    /// SoC-fabric (mailbox, PLIC, main memory) access latency.
    pub soc: RegionLatency,
    /// Ibex core timing (IRQ wake, divider, ...).
    pub timing: IbexTiming,
}

impl LatencyProfile {
    /// The stock OpenTitan interconnect: ≈5-cycle scratchpad, ≈12-cycle SoC
    /// accesses, 45-cycle IRQ wake (paper §V-B).
    #[must_use]
    pub fn baseline() -> LatencyProfile {
        LatencyProfile {
            rot: RegionLatency::symmetric(5),
            soc: RegionLatency::symmetric(12),
            timing: IbexTiming::default(),
        }
    }

    /// The "Optimized" variant of Table I: single-cycle scratchpad and
    /// ≈8-cycle SoC accesses via a low-latency interconnect.
    #[must_use]
    pub fn optimized() -> LatencyProfile {
        LatencyProfile {
            rot: RegionLatency::symmetric(1),
            soc: RegionLatency::symmetric(8),
            timing: IbexTiming::default(),
        }
    }
}

/// The composed root of trust.
#[derive(Debug)]
pub struct OpenTitan {
    /// The Ibex security microcontroller.
    pub core: IbexCore,
    /// Shared handle to the CFI mailbox (the host side holds a clone).
    pub mailbox: CfiMailbox,
    /// Shared handle to the interrupt controller.
    pub plic: Plic,
    /// The HMAC accelerator (used by policies to authenticate spills).
    pub hmac: HmacEngine,
    /// The scrambled, ECC-protected embedded flash (key storage).
    pub flash: Flash,
}

impl OpenTitan {
    /// Builds the RoT, loads `firmware` into the scratchpad, and points the
    /// core at its entry.
    ///
    /// # Panics
    ///
    /// Panics if the firmware image does not fit the scratchpad or is not
    /// based inside it.
    #[must_use]
    pub fn new(firmware: &Program, profile: LatencyProfile) -> OpenTitan {
        assert!(
            firmware.base >= map::SRAM_BASE && firmware.end() <= map::SRAM_BASE + map::SRAM_SIZE,
            "firmware image must live in the RoT scratchpad"
        );
        let mailbox = CfiMailbox::new();
        let plic = Plic::new();
        let mut bus = SystemBus::new();
        bus.add_ram(
            map::SRAM_BASE,
            map::SRAM_SIZE,
            RegionKind::RotPrivate,
            profile.rot,
        );
        bus.add_device(
            map::PLIC_BASE,
            map::PLIC_SIZE,
            RegionKind::Soc,
            profile.soc,
            plic.device(),
        );
        bus.add_device(
            map::MAILBOX_BASE,
            map::MAILBOX_SIZE,
            RegionKind::Soc,
            profile.soc,
            mailbox.device(),
        );
        bus.add_ram(
            map::SOC_RAM_BASE,
            map::SOC_RAM_SIZE,
            RegionKind::Soc,
            profile.soc,
        );
        bus.load(firmware.base, &firmware.bytes);
        let mut core = IbexCore::new(bus, firmware.entry, profile.timing);
        // Stack at the top of the scratchpad.
        core.hart
            .set_reg(riscv_isa::Reg::SP, map::SRAM_BASE + map::SRAM_SIZE - 16);
        OpenTitan {
            core,
            mailbox,
            plic,
            hmac: HmacEngine::new(b"titancfi-device-unique-key"),
            flash: Flash::new(4096, 0x0123_4567_89ab_cdef),
        }
    }

    /// Propagates the mailbox doorbell through the PLIC to the Ibex
    /// external-interrupt line. Call once per co-simulation step.
    pub fn sync_irq(&mut self) {
        let doorbell = self.mailbox.doorbell_pending();
        self.sync_irq_level(doorbell);
    }

    /// [`OpenTitan::sync_irq`] with the doorbell level supplied by the
    /// caller — event-driven schedulers cache the level to avoid re-locking
    /// the mailbox on every processed tick. Idempotent for a given level.
    pub fn sync_irq_level(&mut self, doorbell: bool) {
        if doorbell {
            self.plic.raise(SRC_CFI_MAILBOX);
        } else {
            self.plic.lower(SRC_CFI_MAILBOX);
        }
        self.core.set_irq(csr::MIX_MEIP, self.plic.irq_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_asm::assemble;
    use riscv_isa::{Reg, Xlen};

    #[test]
    fn boots_firmware_in_scratchpad() {
        let fw =
            assemble("_start: li a0, 99\nebreak\n", Xlen::Rv32, map::SRAM_BASE).expect("assembles");
        let mut rot = OpenTitan::new(&fw, LatencyProfile::baseline());
        let _ = rot.core.step().expect("li");
        assert_eq!(rot.core.hart.reg(Reg::A0), 99);
    }

    #[test]
    fn doorbell_reaches_ibex_irq_line() {
        let fw = assemble("_start: wfi\nebreak\n", Xlen::Rv32, map::SRAM_BASE).expect("fw");
        let mut rot = OpenTitan::new(&fw, LatencyProfile::baseline());
        rot.core.hart.csrs.mie = csr::MIX_MEIP;
        rot.sync_irq();
        assert_eq!(rot.core.hart.csrs.mip & csr::MIX_MEIP, 0);
        rot.mailbox.host_ring_doorbell();
        rot.sync_irq();
        assert_ne!(rot.core.hart.csrs.mip & csr::MIX_MEIP, 0);
    }

    #[test]
    #[should_panic(expected = "scratchpad")]
    fn rejects_firmware_outside_scratchpad() {
        let fw = assemble("_start: nop\n", Xlen::Rv32, 0x2000_0000).expect("fw");
        let _ = OpenTitan::new(&fw, LatencyProfile::baseline());
    }

    #[test]
    fn profiles_differ_in_latency() {
        let b = LatencyProfile::baseline();
        let o = LatencyProfile::optimized();
        assert!(b.rot.read > o.rot.read);
        assert!(b.soc.read > o.soc.read);
    }
}
