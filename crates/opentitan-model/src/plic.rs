//! A minimal RISC-V platform-level interrupt controller (rv_plic).
//!
//! OpenTitan routes peripheral interrupts — including the CFI mailbox
//! doorbell — through an rv_plic instance to the Ibex external-interrupt
//! line. The firmware's IRQ prologue/epilogue *claims* and *completes* the
//! interrupt with two SoC-fabric register accesses; those two accesses are
//! exactly the "Mem. SoC 2" row of the paper's Table I IRQ section, so the
//! model keeps the same protocol.

use ibex_model::Device;
use riscv_isa::MemWidth;
use std::sync::{Arc, Mutex};

/// Register offsets.
pub mod regs {
    /// Read: pending source bitmap.
    pub const PENDING: u64 = 0x00;
    /// Read: claim (returns highest pending source id and clears it);
    /// Write: complete (re-enables the source).
    pub const CLAIM_COMPLETE: u64 = 0x04;
}

/// Interrupt source id of the CFI mailbox doorbell.
pub const SRC_CFI_MAILBOX: u32 = 1;

#[derive(Debug, Default)]
struct Shared {
    pending: u32,
    in_service: u32,
}

/// The PLIC state, shared with platform glue that raises interrupts.
#[derive(Debug, Clone, Default)]
pub struct Plic {
    shared: Arc<Mutex<Shared>>,
}

impl Plic {
    /// A controller with no pending interrupts.
    #[must_use]
    pub fn new() -> Plic {
        Plic::default()
    }

    /// Raises source `src` (level-sensitive; platform glue calls this).
    pub fn raise(&self, src: u32) {
        self.shared.lock().expect("plic lock").pending |= 1 << src;
    }

    /// Lowers source `src`.
    pub fn lower(&self, src: u32) {
        self.shared.lock().expect("plic lock").pending &= !(1 << src);
    }

    /// Whether any source is pending and not already in service — drives
    /// the Ibex `mip.MEIP` line.
    #[must_use]
    pub fn irq_line(&self) -> bool {
        let s = self.shared.lock().expect("plic lock");
        s.pending & !s.in_service != 0
    }

    /// The RoT-side bus device view.
    #[must_use]
    pub fn device(&self) -> Box<dyn Device> {
        Box::new(PlicDevice {
            shared: Arc::clone(&self.shared),
        })
    }
}

struct PlicDevice {
    shared: Arc<Mutex<Shared>>,
}

impl Device for PlicDevice {
    fn read(&mut self, offset: u64, _width: MemWidth) -> u64 {
        let mut s = self.shared.lock().expect("plic lock");
        match offset {
            regs::PENDING => u64::from(s.pending),
            regs::CLAIM_COMPLETE => {
                let claimable = s.pending & !s.in_service;
                if claimable == 0 {
                    0
                } else {
                    let src = claimable.trailing_zeros();
                    s.in_service |= 1 << src;
                    u64::from(src)
                }
            }
            _ => 0,
        }
    }

    fn write(&mut self, offset: u64, _width: MemWidth, value: u64) {
        let mut s = self.shared.lock().expect("plic lock");
        if offset == regs::CLAIM_COMPLETE {
            s.in_service &= !(1u32 << (value as u32 & 31));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_complete_cycle() {
        let plic = Plic::new();
        let mut dev = plic.device();
        plic.raise(SRC_CFI_MAILBOX);
        assert!(plic.irq_line());
        // Claim returns the source and masks the line.
        assert_eq!(
            dev.read(regs::CLAIM_COMPLETE, MemWidth::W),
            u64::from(SRC_CFI_MAILBOX)
        );
        assert!(!plic.irq_line(), "in-service source does not re-interrupt");
        // Source deasserts, firmware completes.
        plic.lower(SRC_CFI_MAILBOX);
        dev.write(
            regs::CLAIM_COMPLETE,
            MemWidth::W,
            u64::from(SRC_CFI_MAILBOX),
        );
        assert!(!plic.irq_line());
        // Re-raise works after completion.
        plic.raise(SRC_CFI_MAILBOX);
        assert!(plic.irq_line());
    }

    #[test]
    fn claim_with_nothing_pending_returns_zero() {
        let plic = Plic::new();
        let mut dev = plic.device();
        assert_eq!(dev.read(regs::CLAIM_COMPLETE, MemWidth::W), 0);
    }

    #[test]
    fn lowest_source_wins() {
        let plic = Plic::new();
        let mut dev = plic.device();
        plic.raise(3);
        plic.raise(1);
        assert_eq!(dev.read(regs::CLAIM_COMPLETE, MemWidth::W), 1);
        assert_eq!(dev.read(regs::CLAIM_COMPLETE, MemWidth::W), 3);
    }
}
