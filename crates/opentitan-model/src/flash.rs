//! The OpenTitan embedded-flash model: ECC plus data & address scrambling.
//!
//! OpenTitan's eFlash stores every 64-bit word with a SECDED code and
//! scrambles both data (keyed XOR keystream) and addresses (keyed bijective
//! permutation) so that physical readout reveals neither content nor layout
//! (paper §III-B). The model implements a real Hsiao-style (72,64) SECDED
//! code — single-bit errors are corrected, double-bit errors detected — and
//! a keyed scrambler, and exposes fault-injection hooks so tests can flip
//! stored bits and watch the ECC respond.

use std::fmt;

/// Result of reading a flash word through the ECC decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccRead {
    /// Stored word was clean.
    Clean(u64),
    /// A single bit was corrected.
    Corrected(u64),
    /// Uncorrectable (≥2 bit flips): the data cannot be trusted.
    Uncorrectable,
}

impl EccRead {
    /// The recovered value, if any.
    #[must_use]
    pub fn value(self) -> Option<u64> {
        match self {
            EccRead::Clean(v) | EccRead::Corrected(v) => Some(v),
            EccRead::Uncorrectable => None,
        }
    }
}

impl fmt::Display for EccRead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccRead::Clean(v) => write!(f, "clean({v:#x})"),
            EccRead::Corrected(v) => write!(f, "corrected({v:#x})"),
            EccRead::Uncorrectable => f.write_str("uncorrectable"),
        }
    }
}

/// Encodes a 64-bit word into (data, 8 parity bits) — a Hamming(71,64)
/// extended with an overall parity bit, i.e. SECDED.
#[must_use]
pub fn secded_encode(data: u64) -> (u64, u8) {
    let mut parity = 0u8;
    // Seven Hamming parity bits over positions chosen by bit index masks.
    for (i, mask) in HAMMING_MASKS.iter().enumerate() {
        let p = (data & mask).count_ones() & 1;
        parity |= (p as u8) << i;
    }
    // Overall parity (bit 7) over data and the seven parity bits.
    let overall = (data.count_ones() + u32::from(parity).count_ones()) & 1;
    parity |= (overall as u8) << 7;
    (data, parity)
}

/// Decodes a stored (data, parity) pair, correcting single-bit errors.
#[must_use]
pub fn secded_decode(data: u64, parity: u8) -> EccRead {
    // Recompute each parity group over the *received* bits. A flipped bit
    // — data or parity — shows up in the syndrome; the overall bit (which
    // covers every data and parity bit) tells odd from even error counts.
    let mut syndrome = 0u8;
    for (i, mask) in HAMMING_MASKS.iter().enumerate() {
        let calc = ((data & mask).count_ones() & 1) as u8;
        if calc != (parity >> i) & 1 {
            syndrome |= 1 << i;
        }
    }
    let overall_calc = ((data.count_ones() + u32::from(parity & 0x7f).count_ones()) & 1) as u8;
    let overall_err = overall_calc != (parity >> 7) & 1;
    if syndrome == 0 && !overall_err {
        return EccRead::Clean(data);
    }
    if syndrome == 0 && overall_err {
        // Error in the overall parity bit itself: data is fine.
        return EccRead::Corrected(data);
    }
    if overall_err {
        // Odd number of errors with a nonzero syndrome: locate the single
        // flipped data bit — the unique bit index whose mask membership
        // pattern equals the syndrome.
        for bit in 0..64 {
            let mut pattern = 0u8;
            for (i, mask) in HAMMING_MASKS.iter().enumerate() {
                if mask & (1u64 << bit) != 0 {
                    pattern |= 1 << i;
                }
            }
            if pattern == syndrome {
                return EccRead::Corrected(data ^ (1u64 << bit));
            }
        }
        // Syndrome points at a parity bit: data unaffected.
        return EccRead::Corrected(data);
    }
    // Even number of errors: detectable, not correctable.
    EccRead::Uncorrectable
}

/// Parity-group membership masks. Bit `b` of the data word participates in
/// parity group `i` iff `HAMMING_MASKS[i]` has bit `b` set. The patterns are
/// the binary representations of `b + 1` extended to 7 bits with a tweak
/// making every column distinct and nonzero.
const HAMMING_MASKS: [u64; 7] = hamming_masks();

const fn hamming_masks() -> [u64; 7] {
    let mut masks = [0u64; 7];
    let mut bit = 0;
    while bit < 64 {
        // Map data bit -> a distinct 7-bit pattern with >= 2 bits set (so
        // single data-bit errors are distinguishable from single parity-bit
        // errors, whose pattern has exactly 1 bit set). 2^7 - 1 - 7 = 120
        // such patterns exist, enough for 64 data bits.
        let mut n = 0;
        let mut code = 0u64;
        let mut c = 1u64;
        while c < 128 {
            if c.count_ones() >= 2 {
                if n == bit {
                    code = c;
                    break;
                }
                n += 1;
            }
            c += 1;
        }
        let mut i = 0;
        while i < 7 {
            if code & (1 << i) != 0 {
                masks[i] |= 1u64 << bit;
            }
            i += 1;
        }
        bit += 1;
    }
    masks
}

/// A keyed 64-bit block scrambler (4-round xor-rotate-multiply Feistel-ish
/// mix — not cryptographically strong, but a faithful stand-in for the
/// PRESENT-based scrambling in the real device).
#[derive(Debug, Clone, Copy)]
pub struct Scrambler {
    key: u64,
}

impl Scrambler {
    /// A scrambler keyed with `key`.
    #[must_use]
    pub fn new(key: u64) -> Scrambler {
        Scrambler { key }
    }

    /// Scrambles `data` stored at word-address `addr` (address-tweaked).
    #[must_use]
    pub fn scramble(&self, addr: u64, data: u64) -> u64 {
        let mut v = data ^ self.keystream(addr);
        v = v.rotate_left(17).wrapping_mul(0x9e37_79b9_7f4a_7c15 | 1);
        v ^= v >> 31;
        v
    }

    /// Inverse of [`Scrambler::scramble`].
    #[must_use]
    pub fn descramble(&self, addr: u64, stored: u64) -> u64 {
        let mut v = stored;
        v ^= v >> 31;
        v ^= v >> 62;
        v = v.wrapping_mul(MUL_INV).rotate_right(17);
        v ^ self.keystream(addr)
    }

    fn keystream(&self, addr: u64) -> u64 {
        let mut x = addr.wrapping_mul(0xd605_3dfd_bb24_9c1b) ^ self.key;
        x ^= x >> 29;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 32;
        x
    }
}

/// Modular inverse of `0x9e37_79b9_7f4a_7c15 | 1` mod 2^64.
const MUL_INV: u64 = mul_inv(0x9e37_79b9_7f4a_7c15 | 1);

const fn mul_inv(a: u64) -> u64 {
    // Newton iteration for the inverse of an odd number mod 2^64.
    let mut x = a; // correct to 3 bits
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
        i += 1;
    }
    x
}

/// The scrambled, ECC-protected flash array.
#[derive(Debug, Clone)]
pub struct Flash {
    scrambler: Scrambler,
    words: Vec<(u64, u8)>,
}

impl Flash {
    /// A flash of `words` 64-bit words, scrambled with `key`.
    #[must_use]
    pub fn new(words: usize, key: u64) -> Flash {
        let scrambler = Scrambler::new(key);
        let mut flash = Flash {
            scrambler,
            words: Vec::with_capacity(words),
        };
        for addr in 0..words as u64 {
            let stored = flash.scrambler.scramble(addr, 0);
            let (d, p) = secded_encode(stored);
            flash.words.push((d, p));
        }
        flash
    }

    /// Number of words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the flash has zero capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Programs word `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: u64, value: u64) {
        let stored = self.scrambler.scramble(addr, value);
        self.words[addr as usize] = secded_encode(stored);
    }

    /// Reads word `addr` through descrambling and ECC.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn read(&self, addr: u64) -> EccRead {
        let (d, p) = self.words[addr as usize];
        match secded_decode(d, p) {
            EccRead::Clean(v) => EccRead::Clean(self.scrambler.descramble(addr, v)),
            EccRead::Corrected(v) => EccRead::Corrected(self.scrambler.descramble(addr, v)),
            EccRead::Uncorrectable => EccRead::Uncorrectable,
        }
    }

    /// Fault injection: flips raw stored bit `bit` (0..=71) of word `addr`,
    /// where bits 64..=71 are the parity byte.
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `bit` is out of range.
    pub fn flip_bit(&mut self, addr: u64, bit: u8) {
        assert!(bit < 72, "bit index {bit} out of range");
        let (d, p) = &mut self.words[addr as usize];
        if bit < 64 {
            *d ^= 1u64 << bit;
        } else {
            *p ^= 1u8 << (bit - 64);
        }
    }

    /// Raw stored (scrambled) word — what a physical readout attack sees.
    #[must_use]
    pub fn raw(&self, addr: u64) -> u64 {
        self.words[addr as usize].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secded_roundtrip_clean() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            let (d, p) = secded_encode(v);
            assert_eq!(secded_decode(d, p), EccRead::Clean(v));
        }
    }

    #[test]
    fn secded_corrects_any_single_data_bit() {
        let v = 0x0123_4567_89ab_cdefu64;
        let (d, p) = secded_encode(v);
        for bit in 0..64 {
            let r = secded_decode(d ^ (1u64 << bit), p);
            assert_eq!(r, EccRead::Corrected(v), "bit {bit}");
        }
    }

    #[test]
    fn secded_corrects_parity_bit_errors() {
        let v = 42u64;
        let (d, p) = secded_encode(v);
        for bit in 0..8 {
            let r = secded_decode(d, p ^ (1 << bit));
            assert_eq!(r.value(), Some(v), "parity bit {bit}");
        }
    }

    #[test]
    fn secded_detects_double_errors() {
        let v = 0xffff_0000_ffff_0000u64;
        let (d, p) = secded_encode(v);
        // Flip two data bits: must be flagged uncorrectable, never silently
        // miscorrected.
        for (a, b) in [(0, 1), (5, 40), (63, 7), (13, 14)] {
            let r = secded_decode(d ^ (1u64 << a) ^ (1u64 << b), p);
            assert_eq!(r, EccRead::Uncorrectable, "bits {a},{b}");
        }
    }

    #[test]
    fn scrambler_bijective() {
        let s = Scrambler::new(0x5eed_cafe);
        for addr in 0..64u64 {
            for data in [0u64, 1, u64::MAX, addr.wrapping_mul(0x1234_5678_9abc)] {
                assert_eq!(s.descramble(addr, s.scramble(addr, data)), data);
            }
        }
    }

    #[test]
    fn scrambling_is_address_dependent() {
        let s = Scrambler::new(7);
        assert_ne!(s.scramble(0, 42), s.scramble(1, 42));
    }

    #[test]
    fn flash_write_read() {
        let mut f = Flash::new(128, 0xdead);
        f.write(3, 0x1122_3344_5566_7788);
        assert_eq!(f.read(3), EccRead::Clean(0x1122_3344_5566_7788));
        // Physical readout does not reveal the plaintext.
        assert_ne!(f.raw(3), 0x1122_3344_5566_7788);
    }

    #[test]
    fn flash_corrects_and_detects() {
        let mut f = Flash::new(16, 1);
        f.write(0, 99);
        f.flip_bit(0, 17);
        assert_eq!(f.read(0).value(), Some(99), "single flip corrected");
        f.flip_bit(0, 44);
        assert_eq!(f.read(0), EccRead::Uncorrectable, "double flip detected");
    }
}
