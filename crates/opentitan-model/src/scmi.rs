//! The SCMI-style system mailbox between the host domain and the RoT.
//!
//! Paper §III-B: *"Communications between the host domain and the RoT are
//! mediated by a SCMI compliant mailbox"* — general-purpose shared
//! registers plus doorbell/completion interrupts. (TitanCFI's CFI mailbox
//! is a second instance of the same design, specialised for commit logs.)
//! This module models the generic channel and the two services the
//! platform uses it for: firmware-version queries and remote-attestation
//! challenges.

use crate::attestation::{AttestationReport, Attestor, Challenge};
use std::sync::{Arc, Mutex};

/// Payload capacity of the shared-memory area (bytes).
pub const PAYLOAD_BYTES: usize = 96;

/// Host-to-RoT request messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScmiRequest {
    /// Protocol/firmware version query.
    Version,
    /// Remote-attestation challenge.
    Attest(Challenge),
}

/// RoT-to-host responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScmiResponse {
    /// Version reply.
    Version {
        /// Implementation version word.
        version: u32,
    },
    /// Signed attestation report.
    Attestation(AttestationReport),
    /// The request could not be parsed or served.
    Error,
}

#[derive(Debug, Default)]
struct Channel {
    request: Option<ScmiRequest>,
    response: Option<ScmiResponse>,
    doorbell: bool,
    completion: bool,
}

/// The shared SCMI channel.
#[derive(Debug, Clone, Default)]
pub struct ScmiMailbox {
    shared: Arc<Mutex<Channel>>,
}

impl ScmiMailbox {
    /// An idle channel.
    #[must_use]
    pub fn new() -> ScmiMailbox {
        ScmiMailbox::default()
    }

    /// Host: posts a request and rings the doorbell.
    ///
    /// Returns `false` when a request is already in flight (channel busy).
    pub fn host_post(&self, request: ScmiRequest) -> bool {
        let mut ch = self.shared.lock().expect("scmi lock");
        if ch.doorbell || ch.completion {
            return false;
        }
        ch.request = Some(request);
        ch.doorbell = true;
        true
    }

    /// Host: polls for and takes the response.
    pub fn host_take_response(&self) -> Option<ScmiResponse> {
        let mut ch = self.shared.lock().expect("scmi lock");
        if !ch.completion {
            return None;
        }
        ch.completion = false;
        ch.response.take()
    }

    /// RoT: whether the doorbell is pending (drives the IRQ line).
    #[must_use]
    pub fn rot_doorbell(&self) -> bool {
        self.shared.lock().expect("scmi lock").doorbell
    }

    /// RoT: takes the pending request (clears the doorbell).
    pub fn rot_take_request(&self) -> Option<ScmiRequest> {
        let mut ch = self.shared.lock().expect("scmi lock");
        if !ch.doorbell {
            return None;
        }
        ch.doorbell = false;
        ch.request.take()
    }

    /// RoT: posts the response and signals completion.
    pub fn rot_respond(&self, response: ScmiResponse) {
        let mut ch = self.shared.lock().expect("scmi lock");
        ch.response = Some(response);
        ch.completion = true;
    }
}

/// The RoT-side SCMI service: dispatches requests against the platform
/// services (attestation, version).
#[derive(Debug)]
pub struct ScmiService {
    mailbox: ScmiMailbox,
    attestor: Attestor,
    version: u32,
    /// Requests served.
    pub served: u64,
}

impl ScmiService {
    /// A service bound to `mailbox`, attesting over `image`.
    #[must_use]
    pub fn new(mailbox: ScmiMailbox, attestation_key: &[u8], image: &[u8]) -> ScmiService {
        ScmiService {
            mailbox,
            attestor: Attestor::new(attestation_key, image),
            version: 0x0001_0000,
            served: 0,
        }
    }

    /// Serves at most one pending request; returns whether one was served.
    pub fn poll(&mut self) -> bool {
        let Some(request) = self.mailbox.rot_take_request() else {
            return false;
        };
        let response = match request {
            ScmiRequest::Version => ScmiResponse::Version {
                version: self.version,
            },
            ScmiRequest::Attest(challenge) => {
                ScmiResponse::Attestation(self.attestor.attest(&challenge))
            }
        };
        self.mailbox.rot_respond(response);
        self.served += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::verify_report;
    use crate::sha256::sha256;

    const KEY: &[u8] = b"scmi-attestation-key";
    const IMAGE: &[u8] = b"cfi firmware image bytes";

    fn setup() -> (ScmiMailbox, ScmiService) {
        let mb = ScmiMailbox::new();
        let svc = ScmiService::new(mb.clone(), KEY, IMAGE);
        (mb, svc)
    }

    #[test]
    fn version_round_trip() {
        let (mb, mut svc) = setup();
        assert!(mb.host_post(ScmiRequest::Version));
        assert!(svc.poll());
        match mb.host_take_response() {
            Some(ScmiResponse::Version { version }) => assert_eq!(version, 0x0001_0000),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attestation_over_scmi_verifies() {
        let (mb, mut svc) = setup();
        let ch = Challenge { nonce: [0x42; 16] };
        assert!(mb.host_post(ScmiRequest::Attest(ch)));
        assert!(svc.poll());
        match mb.host_take_response() {
            Some(ScmiResponse::Attestation(report)) => {
                assert!(verify_report(&report, &ch, KEY, &sha256(IMAGE)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(svc.served, 1);
    }

    #[test]
    fn channel_busy_rejects_second_request() {
        let (mb, mut svc) = setup();
        assert!(mb.host_post(ScmiRequest::Version));
        assert!(!mb.host_post(ScmiRequest::Version), "doorbell pending");
        svc.poll();
        // Response not yet taken: still busy.
        assert!(!mb.host_post(ScmiRequest::Version), "completion pending");
        let _ = mb.host_take_response();
        assert!(mb.host_post(ScmiRequest::Version), "idle again");
    }

    #[test]
    fn poll_without_request_is_noop() {
        let (_, mut svc) = setup();
        assert!(!svc.poll());
        assert_eq!(svc.served, 0);
    }
}
